//! Fault-injection coverage for the results store's durability paths.
//!
//! The crash-safety contract (`results_store::fault`, proven by
//! `tests/fault_injection.rs` and the kill-mid-flush schedules) only
//! holds while every byte that reaches disk flows through an armable
//! failpoint. New raw I/O added to the flush/compact/sidecar modules
//! would silently dodge that harness, so this rule requires each raw
//! filesystem call in those modules to sit inside a function that
//! consults `fault::check_io` or writes through a `FaultyWriter`.
//!
//! Exemption: `.write_all(...)` in a function whose signature takes the
//! writer abstractly (`impl Write` / `dyn Write` / a `Write` bound) is
//! the *caller's* responsibility — the concrete writer is wrapped at its
//! creation site, which this rule still checks.

use super::Finding;
use crate::source::SourceFile;

/// The modules whose raw I/O must be failpoint-covered.
const SCOPES: &[&str] = &[
    "crates/results-store/src/store.rs",
    "crates/results-store/src/sidecar.rs",
    "crates/results-store/src/format.rs",
];

/// Raw I/O tokens. `(needle, write_exempt)`: `write_exempt` marks calls
/// that are satisfied by an abstract-writer signature.
const RAW_IO: &[(&str, bool)] = &[
    ("File::create(", false),
    ("OpenOptions::new(", false),
    ("fs::rename(", false),
    ("fs::remove_file(", false),
    (".write_all(", true),
    (".sync_all(", false),
    (".sync_data(", false),
];

/// Runs the fault-coverage rule over `file`.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if !SCOPES.contains(&file.path.as_str()) {
        return;
    }
    for (idx, line) in file.lex.code.iter().enumerate() {
        let lineno = idx + 1;
        if file.is_test_line(lineno) {
            continue;
        }
        for (needle, write_exempt) in RAW_IO {
            if !line.contains(needle) {
                continue;
            }
            let Some(region) = file.enclosing_fn(lineno) else {
                out.push(finding(file, lineno, needle));
                continue;
            };
            let body = file.fn_text(region);
            let covered = body.contains("check_io(") || body.contains("FaultyWriter");
            let abstract_writer = *write_exempt
                && ["impl Write", "dyn Write", ": Write"]
                    .iter()
                    .any(|sig| region.signature.contains(sig));
            if !covered && !abstract_writer {
                out.push(finding(file, lineno, needle));
            }
        }
    }
}

fn finding(file: &SourceFile, line: usize, needle: &str) -> Finding {
    Finding {
        path: file.path.clone(),
        line,
        rule: "fault_coverage",
        message: format!(
            "raw `{}` in a durability module outside any function that consults \
             fault::check_io or a FaultyWriter; new I/O must be failpoint-covered",
            needle.trim_start_matches('.').trim_end_matches('(')
        ),
    }
}
