//! Unsafe audit: every `unsafe` needs an adjacent `// SAFETY:` comment.
//!
//! The workspace is std-only and almost entirely safe Rust; the few
//! `unsafe` sites (e.g. the `extern "C"` signal handler in
//! `gaze-serve`) carry the whole soundness argument in a comment. This
//! rule makes that argument mandatory: an `unsafe` token must have a
//! comment containing `SAFETY:` on the same line or in the contiguous
//! block of comment lines directly above it (so a multi-line soundness
//! argument counts however long it is).

use super::Finding;
use crate::source::{token_positions, SourceFile};

/// Runs the unsafe-audit rule over `file`.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    for (idx, line) in file.lex.code.iter().enumerate() {
        let lineno = idx + 1;
        if file.is_test_line(lineno) {
            continue;
        }
        if token_positions(line, "unsafe").is_empty() {
            continue;
        }
        let documented = adjacent_comment_block(file, lineno)
            .any(|l| file.lex.comment_on(l).contains("SAFETY:"));
        if !documented {
            out.push(Finding {
                path: file.path.clone(),
                line: lineno,
                rule: "safety_comment",
                message: "`unsafe` without an adjacent `// SAFETY:` comment stating why \
                          the operation is sound"
                    .to_string(),
            });
        }
    }
}

/// The `unsafe` line itself plus the unbroken run of comment-bearing
/// lines directly above it, walking upward until a line with no comment.
fn adjacent_comment_block(file: &SourceFile, lineno: usize) -> impl Iterator<Item = usize> + '_ {
    let mut first = lineno;
    while first > 1 && !file.lex.comment_on(first - 1).is_empty() {
        first -= 1;
    }
    first..=lineno
}
