//! The rule engine: each rule walks the prepared [`SourceFile`]s and
//! reports [`Finding`]s; suppressions are applied afterwards so that an
//! `allow` that matches nothing is itself a finding.

use crate::source::SourceFile;

pub mod determinism;
pub mod fault;
pub mod inventory;
pub mod logging;
pub mod safety;

/// One rule violation at a specific site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Rule identifier (the name `allow(...)` takes).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// The documentation files some rules cross-check against.
pub struct Docs {
    /// Contents of `docs/CONFIG.md`, if present.
    pub config_md: Option<String>,
    /// Contents of `docs/OBSERVABILITY.md`, if present.
    pub observability_md: Option<String>,
}

/// Runs every rule over `files`, applies suppressions, and returns the
/// surviving findings sorted by path, line and rule.
pub fn run(files: &[SourceFile], docs: &Docs) -> Vec<Finding> {
    let mut raw: Vec<Finding> = Vec::new();
    for file in files {
        determinism::check(file, &mut raw);
        fault::check(file, &mut raw);
        logging::check(file, &mut raw);
        safety::check(file, &mut raw);
    }
    inventory::check_env(files, docs.config_md.as_deref(), &mut raw);
    inventory::check_metrics(files, docs.observability_md.as_deref(), &mut raw);

    // Apply per-site suppressions (and record which were used).
    let mut findings: Vec<Finding> = Vec::new();
    for f in raw {
        let suppressed = files
            .iter()
            .find(|s| s.path == f.path)
            .is_some_and(|s| s.suppressed(f.rule, f.line));
        if !suppressed {
            findings.push(f);
        }
    }

    // Marker hygiene: malformed markers and allows that matched nothing.
    for file in files {
        for bad in &file.bad_markers {
            findings.push(Finding {
                path: file.path.clone(),
                line: bad.line,
                rule: "bad_allow",
                message: format!("malformed gaze-lint marker: {}", bad.problem),
            });
        }
        for s in &file.suppressions {
            let mut named_unknown = false;
            for rule in &s.rules {
                if !RULES.contains(&rule.as_str()) {
                    named_unknown = true;
                    findings.push(Finding {
                        path: file.path.clone(),
                        line: s.line,
                        rule: "bad_allow",
                        message: format!("unknown rule '{rule}' in allow(...)"),
                    });
                }
            }
            // An allow naming an unknown rule is already reported above;
            // piling unused_allow on top would be noise.
            if !s.used.get() && !named_unknown {
                findings.push(Finding {
                    path: file.path.clone(),
                    line: s.line,
                    rule: "unused_allow",
                    message: format!(
                        "allow({}) suppresses nothing on this or the next line; remove it",
                        s.rules.join(", ")
                    ),
                });
            }
        }
    }

    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    findings.dedup();
    findings
}

/// Every suppressible rule identifier.
pub const RULES: &[&str] = &[
    "wall_clock",
    "map_iteration",
    "fault_coverage",
    "safety_comment",
    "eprintln",
    "env_inventory",
    "metrics_catalog",
];
