//! Determinism rules for the simulation and render paths.
//!
//! Every figure, CSV and fingerprint this workspace emits is pinned
//! bit-exact across thread counts and skip modes (`determinism.rs`,
//! golden fixtures). Two things quietly break that contract:
//!
//! * **wall clocks** — `SystemTime::now` / `Instant::now` values that
//!   leak into computed results make reruns differ;
//! * **hash-order iteration** — `HashMap`/`HashSet` iteration order is
//!   randomized per process, so any loop over one can reorder floating
//!   point accumulation or output rows.
//!
//! The rules fire only inside the simulation/render crates
//! ([`in_scope`]); serving, benching and observability crates measure
//! real time on purpose.

use super::Finding;
use crate::source::{token_positions, SourceFile};

/// Path prefixes of the crates whose code must be deterministic.
const SCOPES: &[&str] = &[
    "crates/sim-core/src",
    "crates/gaze/src",
    "crates/baselines/src",
    "crates/gaze-sim/src",
    "crates/prefetch-common/src",
];

/// Whether `path` is in a determinism-scoped crate.
pub fn in_scope(path: &str) -> bool {
    SCOPES.iter().any(|s| path.starts_with(s))
}

/// Map-typed method calls that iterate in hash order.
const NAMED_ITER: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".into_iter()",
    ".retain(",
    ".into_keys()",
    ".into_values()",
];

/// Runs both determinism rules over `file`.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_scope(&file.path) {
        return;
    }
    let bindings = collect_map_bindings(file);
    for (idx, line) in file.lex.code.iter().enumerate() {
        let lineno = idx + 1;
        if file.is_test_line(lineno) {
            continue;
        }
        for clock in ["SystemTime::now", "Instant::now"] {
            if line.contains(clock) {
                out.push(Finding {
                    path: file.path.clone(),
                    line: lineno,
                    rule: "wall_clock",
                    message: format!(
                        "{clock} in a determinism-scoped crate; wall-clock values must \
                         never influence simulated results"
                    ),
                });
            }
        }
        check_map_iteration(file, &bindings, lineno, line, out);
    }
}

/// A `HashMap`/`HashSet` binding and the line it was made on. The line
/// scopes it: a binding inside a function only applies within that
/// function's body, one outside every function (a struct field) applies
/// wherever no local binding shadows the name.
#[derive(Debug)]
struct MapBinding {
    name: String,
    line: usize,
}

/// Heuristically collects identifiers bound to `HashMap`/`HashSet` in
/// this file: `name: HashMap<...>` (fields, params, typed lets) and
/// `let [mut] name = HashMap::new/with_capacity/from/default`.
fn collect_map_bindings(file: &SourceFile) -> Vec<MapBinding> {
    let mut names: Vec<MapBinding> = Vec::new();
    for (idx, line) in file.lex.code.iter().enumerate() {
        for ty in ["HashMap", "HashSet"] {
            for pos in token_positions(line, ty) {
                let before = line[..pos].trim_end();
                let before = before
                    .strip_suffix("std::collections::")
                    .map(str::trim_end)
                    .unwrap_or(before);
                if let Some(name) = collect_binding(before, line, pos) {
                    names.push(MapBinding {
                        name,
                        line: idx + 1,
                    });
                }
            }
        }
    }
    names
}

/// Given the text before a `HashMap`/`HashSet` token, extracts the bound
/// identifier for `name: Map<...>` and `name = Map::new()` shapes.
fn collect_binding(before: &str, line: &str, pos: usize) -> Option<String> {
    let tail = line[pos..]
        .trim_start_matches(|c: char| c.is_alphanumeric())
        .trim_start();
    if let Some(b) = before.strip_suffix(':') {
        // `name: HashMap<...>` — a field, parameter or typed let.
        if tail.starts_with('<') {
            return last_identifier(b);
        }
    } else if let Some(b) = before.strip_suffix('=') {
        // `let [mut] name = HashMap::new()` etc.
        if tail.starts_with("::") {
            return last_identifier(b);
        }
    }
    None
}

/// The trailing identifier of `text`, if it ends with one.
fn last_identifier(text: &str) -> Option<String> {
    let trimmed = text.trim_end();
    let start = trimmed
        .rfind(|c: char| !(c.is_alphanumeric() || c == '_'))
        .map(|i| i + 1)
        .unwrap_or(0);
    let ident = &trimmed[start..];
    if ident.is_empty() || ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    Some(ident.to_string())
}

/// Flags hash-order iteration: map-specific calls anywhere, and generic
/// iteration (`.iter()`, `for … in`) on identifiers known to be maps.
fn check_map_iteration(
    file: &SourceFile,
    bindings: &[MapBinding],
    lineno: usize,
    line: &str,
    out: &mut Vec<Finding>,
) {
    let mut flagged = false;
    // `.keys()` / `.values()` are map-only in this workspace, so they are
    // flagged regardless of the receiver.
    for call in [
        ".keys()",
        ".values()",
        ".values_mut()",
        ".into_keys()",
        ".into_values()",
    ] {
        if line.contains(call) {
            out.push(Finding {
                path: file.path.clone(),
                line: lineno,
                rule: "map_iteration",
                message: format!(
                    "`{call}` iterates in hash order; iteration order must not reach \
                     results, CSVs or fingerprints"
                ),
            });
            flagged = true;
        }
    }
    if flagged {
        return;
    }
    let mut seen: Vec<&str> = Vec::new();
    for binding in bindings {
        let name = binding.name.as_str();
        if seen.contains(&name) {
            continue;
        }
        seen.push(name);
        if !binding_applies(file, bindings, name, lineno) {
            continue;
        }
        let method_hit = NAMED_ITER.iter().any(|m| occurs_as_receiver(line, name, m));
        let for_hit = line.contains("for ") && in_for_source(line, name);
        if method_hit || for_hit {
            out.push(Finding {
                path: file.path.clone(),
                line: lineno,
                rule: "map_iteration",
                message: format!(
                    "iteration over `{name}` (a HashMap/HashSet in this file) runs in \
                     hash order; iteration order must not reach results, CSVs or \
                     fingerprints"
                ),
            });
            return;
        }
    }
}

/// Whether the map binding for `name` is in force at `lineno`.
///
/// A binding made inside the enclosing function wins. Otherwise, if the
/// function locally binds `name` to something this pass could not prove
/// is a map (a `name: …` parameter or typed let, or any `let [mut]
/// name`), the file-level binding is shadowed and does not apply. Only
/// then does a file-level binding — a struct field — reach the line.
fn binding_applies(file: &SourceFile, bindings: &[MapBinding], name: &str, lineno: usize) -> bool {
    let Some(region) = file.enclosing_fn(lineno) else {
        // Not inside any fn (e.g. a const initializer): any binding counts.
        return bindings.iter().any(|b| b.name == name);
    };
    let local_map = bindings
        .iter()
        .any(|b| b.name == name && region.start_line <= b.line && b.line <= region.end_line);
    if local_map {
        return true;
    }
    if has_local_binding(&file.fn_text(region), name) {
        return false;
    }
    bindings
        .iter()
        .any(|b| b.name == name && file.enclosing_fn(b.line).is_none())
}

/// Whether `text` (a function's masked source) binds `name` locally:
/// `name: Type` (parameter or typed let) or `let [mut] name`.
fn has_local_binding(text: &str, name: &str) -> bool {
    for pos in token_positions(text, name) {
        let after = text[pos + name.len()..].trim_start();
        if after.starts_with(':') && !after.starts_with("::") {
            return true;
        }
        let mut before = text[..pos].trim_end();
        if let Some(b) = before.strip_suffix("mut") {
            before = b.trim_end();
        }
        if before.ends_with("let")
            && !before[..before.len() - 3]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            return true;
        }
    }
    false
}

/// Whether `line` contains `name<method>` with `name` at a word boundary.
fn occurs_as_receiver(line: &str, name: &str, method: &str) -> bool {
    let needle = format!("{name}{method}");
    for (pos, _) in line.match_indices(&needle) {
        let before_ok = pos == 0
            || !line[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok {
            return true;
        }
    }
    false
}

/// Whether `name` appears (word-bounded) in the source of a `for … in`.
fn in_for_source(line: &str, name: &str) -> bool {
    line.find(" in ")
        .map(|pos| &line[pos + 4..])
        .is_some_and(|src| !token_positions(src, name).is_empty())
}
