//! Per-rule fixtures: every rule gets a positive (fires) and a negative
//! (stays quiet) case, plus the suppression round-trip and marker
//! hygiene the engine promises.

use gaze_lint::{analyze, Docs};

fn no_docs() -> Docs {
    Docs {
        config_md: None,
        observability_md: None,
    }
}

/// Findings as `(rule, line)` pairs for compact assertions.
fn fired(files: &[(&str, &str)], docs: &Docs) -> Vec<(&'static str, usize)> {
    analyze(files, docs)
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

// ---------------------------------------------------------------- wall_clock

#[test]
fn wall_clock_fires_in_determinism_scope() {
    let src = "pub fn f() {\n    let t = std::time::Instant::now();\n    drop(t);\n}\n";
    let findings = fired(&[("crates/sim-core/src/x.rs", src)], &no_docs());
    assert_eq!(findings, vec![("wall_clock", 2)]);
}

#[test]
fn wall_clock_ignores_out_of_scope_crates_and_test_code() {
    let serve = "pub fn f() { let t = std::time::Instant::now(); drop(t); }\n";
    let test_code =
        "#[cfg(test)]\nmod tests {\n    fn f() { let _ = std::time::Instant::now(); }\n}\n";
    assert!(fired(&[("crates/gaze-serve/src/x.rs", serve)], &no_docs()).is_empty());
    assert!(fired(&[("crates/sim-core/src/y.rs", test_code)], &no_docs()).is_empty());
}

// ------------------------------------------------------------ map_iteration

#[test]
fn map_iteration_flags_blanket_map_calls() {
    let src = "pub fn f(m: &std::collections::HashMap<u32, u32>) -> Vec<u32> {\n    m.values().copied().collect()\n}\n";
    let findings = fired(&[("crates/gaze/src/x.rs", src)], &no_docs());
    assert_eq!(findings, vec![("map_iteration", 2)]);
}

#[test]
fn map_iteration_tracks_local_bindings() {
    let src = "pub fn f() {\n    let mut seen = std::collections::HashSet::new();\n    seen.insert(1u32);\n    for v in seen.iter() {\n        println!(\"{v}\");\n    }\n}\n";
    let findings = fired(&[("crates/baselines/src/x.rs", src)], &no_docs());
    assert_eq!(findings, vec![("map_iteration", 4)]);
}

#[test]
fn map_iteration_respects_function_scoping() {
    // `names` is a HashSet in f() but a slice parameter in g(); only
    // f()'s own iteration may fire — and f() does not iterate.
    let src = "\
pub fn f() -> usize {
    let mut names = std::collections::HashSet::new();
    names.insert(1u32);
    names.len()
}
pub fn g(names: &[u32]) -> Vec<u32> {
    names.iter().copied().collect()
}
";
    assert!(fired(&[("crates/gaze-sim/src/x.rs", src)], &no_docs()).is_empty());
}

#[test]
fn map_iteration_reaches_struct_fields_through_self() {
    let src = "\
pub struct S {
    pending: std::collections::HashMap<u64, u64>,
}
impl S {
    pub fn tick(&mut self) {
        for (k, v) in self.pending.iter() {
            drop((k, v));
        }
    }
}
";
    let findings = fired(&[("crates/sim-core/src/x.rs", src)], &no_docs());
    assert_eq!(findings, vec![("map_iteration", 6)]);
}

// ----------------------------------------------------------- fault_coverage

#[test]
fn fault_coverage_flags_raw_io_in_durability_modules() {
    let src = "\
fn persist(path: &std::path::Path) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    drop(f);
    Ok(())
}
";
    let findings = fired(&[("crates/results-store/src/store.rs", src)], &no_docs());
    assert_eq!(findings, vec![("fault_coverage", 2)]);
}

#[test]
fn fault_coverage_satisfied_by_check_io_in_same_fn() {
    let src = "\
fn persist(path: &std::path::Path) -> std::io::Result<()> {
    fault::check_io(\"store.create\")?;
    let f = std::fs::File::create(path)?;
    drop(f);
    Ok(())
}
";
    assert!(fired(&[("crates/results-store/src/store.rs", src)], &no_docs()).is_empty());
}

#[test]
fn fault_coverage_exempts_abstract_writers_and_other_modules() {
    // `impl Write` receivers are wrapped by the caller (FaultyWriter),
    // and files outside the durability modules are out of scope.
    let writer = "\
pub fn encode(w: &mut impl Write, v: u64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
";
    let elsewhere = "fn f(p: &std::path::Path) { let _ = std::fs::remove_file(p); }\n";
    assert!(fired(
        &[("crates/results-store/src/format.rs", writer)],
        &no_docs()
    )
    .is_empty());
    assert!(fired(
        &[("crates/results-store/src/bloom.rs", elsewhere)],
        &no_docs()
    )
    .is_empty());
}

// ----------------------------------------------------------- safety_comment

#[test]
fn safety_comment_required_for_unsafe() {
    let src = "pub fn f() -> u8 {\n    unsafe { *std::ptr::null::<u8>() }\n}\n";
    let findings = fired(&[("crates/gaze-serve/src/x.rs", src)], &no_docs());
    assert_eq!(findings, vec![("safety_comment", 2)]);
}

#[test]
fn safety_comment_satisfied_by_adjacent_block() {
    // The SAFETY: sentence may open a multi-line comment block; any
    // contiguous run of comment lines directly above counts.
    let src = "\
pub fn f() -> u8 {
    // SAFETY: this fixture never runs; the pointer is
    // never actually dereferenced at runtime because the
    // function is unreachable.
    unsafe { *std::ptr::null::<u8>() }
}
";
    assert!(fired(&[("crates/gaze-serve/src/x.rs", src)], &no_docs()).is_empty());
}

// ----------------------------------------------------------------- eprintln

#[test]
fn eprintln_flagged_outside_tests_only() {
    let src = "pub fn f() { eprintln!(\"boom\"); }\n";
    let test_src = "#[cfg(test)]\nmod tests {\n    fn f() { eprintln!(\"fine in tests\"); }\n}\n";
    assert_eq!(
        fired(&[("crates/gaze/src/x.rs", src)], &no_docs()),
        vec![("eprintln", 1)]
    );
    assert!(fired(&[("crates/gaze/src/y.rs", test_src)], &no_docs()).is_empty());
}

// -------------------------------------------------------------- suppression

#[test]
fn allow_on_preceding_line_suppresses_and_is_marked_used() {
    let src = "\
pub fn f() {
    // gaze-lint: allow(eprintln) -- fixture: deliberate stderr
    eprintln!(\"ok\");
}
";
    assert!(fired(&[("crates/gaze/src/x.rs", src)], &no_docs()).is_empty());
}

#[test]
fn allow_trailing_on_same_line_suppresses() {
    let src =
        "pub fn f() { eprintln!(\"ok\"); } // gaze-lint: allow(eprintln) -- fixture: deliberate\n";
    assert!(fired(&[("crates/gaze/src/x.rs", src)], &no_docs()).is_empty());
}

#[test]
fn unused_allow_is_itself_a_finding() {
    let src = "// gaze-lint: allow(wall_clock) -- nothing here uses a clock\npub fn f() {}\n";
    let findings = fired(&[("crates/sim-core/src/x.rs", src)], &no_docs());
    assert_eq!(findings, vec![("unused_allow", 1)]);
}

#[test]
fn malformed_markers_are_bad_allow() {
    let missing_reason = "// gaze-lint: allow(eprintln)\npub fn f() { eprintln!(\"x\"); }\n";
    let unknown_rule = "// gaze-lint: allow(no_such_rule) -- why\npub fn f() {}\n";
    let not_allow = "// gaze-lint: deny(eprintln) -- why\npub fn f() {}\n";
    let findings = fired(&[("crates/gaze/src/a.rs", missing_reason)], &no_docs());
    // The marker is rejected, so the eprintln also still fires.
    assert!(findings.contains(&("bad_allow", 1)), "{findings:?}");
    assert!(findings.contains(&("eprintln", 2)), "{findings:?}");
    let findings = fired(&[("crates/gaze/src/b.rs", unknown_rule)], &no_docs());
    assert_eq!(findings, vec![("bad_allow", 1)]);
    let findings = fired(&[("crates/gaze/src/c.rs", not_allow)], &no_docs());
    assert_eq!(findings, vec![("bad_allow", 1)]);
}

#[test]
fn doc_comments_are_prose_not_markers() {
    let src = "//! Example: `// gaze-lint: allow(eprintln) -- reason`\npub fn f() {}\n";
    assert!(fired(&[("crates/gaze/src/x.rs", src)], &no_docs()).is_empty());
}

#[test]
fn suppressing_a_meta_rule_is_not_possible() {
    // unused_allow/bad_allow are engine hygiene, not named rules.
    let src =
        "// gaze-lint: allow(unused_allow) -- trying to silence the meta rule\npub fn f() {}\n";
    let findings = fired(&[("crates/gaze/src/x.rs", src)], &no_docs());
    assert_eq!(findings, vec![("bad_allow", 1)]);
}

// ------------------------------------------------------------ env_inventory

#[test]
fn env_inventory_cross_checks_both_directions() {
    let src = "pub fn f() -> Option<String> { std::env::var(\"GAZE_WIDGET\").ok() }\n";
    let docs_missing_var = Docs {
        config_md: Some("| Variable | Default |\n|---|---|\n| `GAZE_OTHER` | unset |\n".into()),
        observability_md: None,
    };
    let findings = fired(&[("crates/gaze/src/x.rs", src)], &docs_missing_var);
    let rules: Vec<&str> = findings.iter().map(|(r, _)| *r).collect();
    // GAZE_WIDGET undocumented + GAZE_OTHER stale.
    assert_eq!(rules, vec!["env_inventory", "env_inventory"]);

    let docs_ok = Docs {
        config_md: Some("| `GAZE_WIDGET` | unset | gaze | a widget |\n".into()),
        observability_md: None,
    };
    assert!(fired(&[("crates/gaze/src/x.rs", src)], &docs_ok).is_empty());
}

#[test]
fn env_inventory_reports_missing_config_md_once() {
    let src =
        "pub fn f() { let _ = std::env::var(\"GAZE_A\"); let _ = std::env::var(\"GAZE_B\"); }\n";
    let findings = analyze(&[("crates/gaze/src/x.rs", src)], &no_docs());
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, "env_inventory");
    assert_eq!(findings[0].path, "docs/CONFIG.md");
}

// ---------------------------------------------------------- metrics_catalog

#[test]
fn metrics_catalog_validates_names_and_docs() {
    let src = "pub fn f(m: &Registry) {\n    m.counter(\"good_metric_total\");\n    m.counter(\"Bad-Name\");\n}\n";
    let docs = Docs {
        config_md: None,
        observability_md: Some("| `good_metric_total` | counter | a fixture |\n".into()),
    };
    let findings = fired(&[("crates/gaze-serve/src/x.rs", src)], &docs);
    // Only the malformed name fires; the cataloged one is clean.
    assert_eq!(findings, vec![("metrics_catalog", 3)]);
}

#[test]
fn metrics_catalog_flags_uncataloged_and_ignores_getters() {
    let src =
        "pub fn f(m: &Registry) -> u64 {\n    m.counter(\"lonely_total\");\n    m.counter()\n}\n";
    let docs = Docs {
        config_md: None,
        observability_md: Some("nothing cataloged here\n".into()),
    };
    let findings = fired(&[("crates/gaze-serve/src/x.rs", src)], &docs);
    assert_eq!(findings, vec![("metrics_catalog", 2)]);
}

// ------------------------------------------------------------- determinism

#[test]
fn findings_are_sorted_and_deduplicated() {
    let a = "pub fn f() { eprintln!(\"x\"); }\n";
    let b = "pub fn g() { let _ = std::time::Instant::now(); }\n";
    let findings = analyze(
        &[("crates/sim-core/src/b.rs", b), ("crates/gaze/src/a.rs", a)],
        &no_docs(),
    );
    let keys: Vec<(String, usize)> = findings.iter().map(|f| (f.path.clone(), f.line)).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "findings must come out path-sorted");
}
