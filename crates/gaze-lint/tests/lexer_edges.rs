//! Pins the lexer's code/comment/string separation on the edge cases
//! Rust syntax throws at a token-level scanner.

use gaze_lint::lexer::lex;

#[test]
fn line_comment_is_dropped_from_mask_and_kept_as_comment() {
    let lexed = lex("let x = 1; // trailing note\n");
    assert_eq!(lexed.code[0], "let x = 1; ");
    assert_eq!(lexed.comments, vec![(1, "// trailing note".to_string())]);
}

#[test]
fn nested_block_comments_terminate_at_matching_depth() {
    let lexed = lex("a /* outer /* inner */ still comment */ b\n");
    assert_eq!(lexed.code[0], "a  b");
    assert!(lexed.comment_on(1).contains("inner"));
}

#[test]
fn multiline_block_comment_covers_every_line() {
    let lexed = lex("before /* one\ntwo\nthree */ after\n");
    assert_eq!(lexed.code[0], "before ");
    assert_eq!(lexed.code[1], "");
    assert_eq!(lexed.code[2], " after");
    assert!(lexed.comment_on(1).contains("one"));
    assert!(lexed.comment_on(2).contains("two"));
    assert!(lexed.comment_on(3).contains("three"));
}

#[test]
fn string_contents_never_reach_the_mask() {
    let lexed = lex(r#"call("// not a comment; unsafe; GAZE_X")"#);
    assert_eq!(lexed.code[0], r#"call("")"#);
    assert!(lexed.comments.is_empty());
    assert_eq!(lexed.strings.len(), 1);
    assert_eq!(lexed.strings[0].value, "// not a comment; unsafe; GAZE_X");
    assert_eq!(lexed.strings[0].line, 1);
    assert_eq!(lexed.strings[0].col, 5);
}

#[test]
fn escaped_quotes_and_backslashes_are_unescaped_in_values() {
    let lexed = lex(r#"let s = "a \"quoted\" \\ path";"#);
    assert_eq!(lexed.code[0], r#"let s = "";"#);
    assert_eq!(lexed.strings[0].value, r#"a "quoted" \ path"#);
}

#[test]
fn raw_strings_with_hashes_terminate_only_on_matching_hashes() {
    let lexed = lex(r###"let s = r#"contains "quote" inside"#; done()"###);
    assert_eq!(lexed.code[0], r##"let s = r#""; done()"##);
    assert_eq!(lexed.strings[0].value, r#"contains "quote" inside"#);
}

#[test]
fn byte_and_raw_byte_strings_are_literals() {
    let lexed = lex(r##"let a = b"bytes"; let b = br#"raw bytes"#;"##);
    assert_eq!(lexed.strings.len(), 2);
    assert_eq!(lexed.strings[0].value, "bytes");
    assert_eq!(lexed.strings[1].value, "raw bytes");
}

#[test]
fn multiline_string_spans_lines_and_mask_stays_synchronized() {
    let lexed = lex("let s = \"first\nsecond\"; let t = 1;\n");
    assert_eq!(lexed.code[0], "let s = \"");
    assert_eq!(lexed.code[1], "\"; let t = 1;");
    assert_eq!(lexed.strings[0].value, "first\nsecond");
    assert_eq!(lexed.strings[0].line, 1);
}

#[test]
fn char_literals_are_masked_but_lifetimes_survive() {
    let lexed = lex(r#"let c = '\''; let q = '"'; fn f<'a>(x: &'a str) {}"#);
    let mask = &lexed.code[0];
    assert!(mask.contains("<'a>"), "lifetime must stay in mask: {mask}");
    assert!(
        mask.contains("&'a str"),
        "lifetime must stay in mask: {mask}"
    );
    assert!(!mask.contains('\\'), "char contents must be masked: {mask}");
    // Char literals collapse to '' and record no string literal.
    assert!(lexed.strings.is_empty());
}

#[test]
fn comment_markers_inside_strings_do_not_open_comments() {
    let lexed = lex("let s = \"/* not open\"; real();\n");
    assert_eq!(lexed.code[0], "let s = \"\"; real();");
    assert!(lexed.comments.is_empty());
}

#[test]
fn string_quote_inside_line_comment_does_not_open_a_string() {
    let lexed = lex("// has a \" quote\nlet x = 1;\n");
    assert!(lexed.strings.is_empty());
    assert_eq!(lexed.code[1], "let x = 1;");
}

#[test]
fn line_count_matches_source() {
    assert_eq!(lex("a\nb\nc").line_count(), 3);
    assert_eq!(lex("a\nb\n").line_count(), 3); // trailing newline opens an empty line
}
