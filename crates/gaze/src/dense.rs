//! The spatial-streaming module: Dense-PC Table (DPCT) and Dense Counter
//! (DC).
//!
//! Footprints produced by spatial streaming are extremely dense (nearly every
//! block of the region is touched), so applying them naively prefetches whole
//! regions and over-prefetches badly when streaming and irregular patterns
//! interleave (the Ligra BFS example of Fig. 5). Gaze therefore double-checks
//! streaming confidence with two cheap structures before committing to an
//! aggressive prefetch: a small table of recently *dense* trigger PCs and a
//! saturating counter tracking how often recent streaming-signature regions
//! really turned out dense.

use prefetch_common::table::{SetAssocTable, TableConfig};

/// Confidence level assigned to a candidate streaming region (stage 1 of the
/// two-stage aggressiveness control).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamConfidence {
    /// The trigger PC was recently dense or the counter is saturated:
    /// prefetch the first 16 blocks to the L1D and the rest to the L2C.
    High,
    /// The counter is half-saturated: prefetch only the first 16 blocks, and
    /// only into the L2C.
    Moderate,
    /// Not confident: do not prefetch; rely on the stride backup (stage 2).
    None,
}

/// DPCT + DC: the streaming-confidence estimator.
#[derive(Debug, Clone)]
pub struct StreamingModule {
    dpct: SetAssocTable<()>,
    counter: u8,
    max: u8,
}

impl StreamingModule {
    /// Creates the module with `dpct_entries` dense-PC entries and a
    /// `dc_bits`-bit saturating counter.
    pub fn new(dpct_entries: usize, dc_bits: u32) -> Self {
        assert!(
            (2..=8).contains(&dc_bits),
            "dense counter width out of range"
        );
        StreamingModule {
            dpct: SetAssocTable::new(TableConfig::fully_associative(dpct_entries.max(1))),
            counter: 0,
            max: ((1u16 << dc_bits) - 1) as u8,
        }
    }

    /// Current dense-counter value.
    pub fn counter(&self) -> u8 {
        self.counter
    }

    /// Whether `pc_hash` is recorded as a recently dense PC.
    pub fn is_dense_pc(&mut self, pc_hash: u16) -> bool {
        self.dpct.get(0, u64::from(pc_hash)).is_some()
    }

    /// Learning step for a deactivated region whose first two accesses were
    /// blocks 0 and 1. `fully_requested` is true when every block of the
    /// region was demanded.
    pub fn learn(&mut self, pc_hash: u16, fully_requested: bool) {
        if fully_requested {
            self.dpct.insert(0, u64::from(pc_hash), ());
            // Slow increment.
            self.counter = (self.counter + 1).min(self.max);
        } else if self.counter > 2 {
            // Fast decrement.
            self.counter /= 2;
        } else {
            // Slow decrement.
            self.counter = self.counter.saturating_sub(1);
        }
    }

    /// Stage-1 confidence for a candidate region triggered by `pc_hash`.
    pub fn confidence(&mut self, pc_hash: u16) -> StreamConfidence {
        if self.is_dense_pc(pc_hash) || self.counter >= self.max {
            StreamConfidence::High
        } else if self.counter > 2 {
            StreamConfidence::Moderate
        } else {
            StreamConfidence::None
        }
    }

    /// Storage cost in bits (DPCT entries of 12-bit hashed PC + 3-bit LRU,
    /// plus the counter itself).
    pub fn storage_bits(&self) -> u64 {
        self.dpct.config().entries() as u64 * 15 + u64::from(self.max.count_ones())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_and_decays() {
        let mut m = StreamingModule::new(8, 3);
        for _ in 0..20 {
            m.learn(1, true);
        }
        assert_eq!(m.counter(), 7);
        // Fast decrement halves a large counter (7 -> 3 -> 1).
        m.learn(1, false);
        assert_eq!(m.counter(), 3);
        m.learn(1, false);
        assert_eq!(m.counter(), 1);
        // Slow decrement once at or below the threshold.
        m.learn(1, false);
        assert_eq!(m.counter(), 0);
        m.learn(1, false);
        assert_eq!(m.counter(), 0);
    }

    #[test]
    fn dense_pc_lookup() {
        let mut m = StreamingModule::new(8, 3);
        assert!(!m.is_dense_pc(42));
        m.learn(42, true);
        assert!(m.is_dense_pc(42));
        assert!(!m.is_dense_pc(43));
    }

    #[test]
    fn dpct_capacity_bounded_by_entries() {
        let mut m = StreamingModule::new(8, 3);
        for pc in 0..100u16 {
            m.learn(pc, true);
        }
        // Only the eight most recent dense PCs are remembered.
        assert!(m.is_dense_pc(99));
        assert!(!m.is_dense_pc(0));
    }

    #[test]
    fn confidence_levels_follow_paper_rules() {
        let mut m = StreamingModule::new(8, 3);
        // Untrained: no prefetch.
        assert_eq!(m.confidence(7), StreamConfidence::None);
        // A recently dense PC gives high confidence regardless of the counter.
        m.learn(7, true);
        assert_eq!(m.confidence(7), StreamConfidence::High);
        // A different PC with a half-saturated counter is moderate.
        m.learn(8, true);
        m.learn(9, true);
        assert_eq!(m.counter(), 3);
        assert_eq!(m.confidence(100), StreamConfidence::Moderate);
        // Saturate the counter: even unknown PCs become high confidence.
        for _ in 0..10 {
            m.learn(7, true);
        }
        assert_eq!(m.confidence(100), StreamConfidence::High);
    }

    #[test]
    fn storage_matches_table_i() {
        let m = StreamingModule::new(8, 3);
        // 8 entries * 15 bits = 120 bits = 15 bytes, plus the 3-bit counter.
        assert_eq!(m.storage_bits(), 123);
    }

    #[test]
    #[should_panic(expected = "counter width")]
    fn counter_width_validated() {
        let _ = StreamingModule::new(8, 1);
    }
}
