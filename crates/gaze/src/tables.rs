//! The Filter Table (FT) and Accumulation Table (AT).
//!
//! The FT holds regions that have so far been touched by a single block — it
//! filters out one-bit footprints so they never pollute the pattern history.
//! The AT tracks all active regions: it accumulates the spatial footprint,
//! remembers the first accesses (used to index/tag the pattern history), and
//! carries the `stride_flag` used by the stage-2 aggressiveness promotion and
//! the region-based stride backup prefetcher.

use prefetch_common::footprint::Footprint;
use prefetch_common::table::{SetAssocTable, TableConfig};

/// Hashes a program counter down to the 12 bits the hardware stores.
pub fn hash_pc(pc: u64) -> u16 {
    ((pc ^ (pc >> 12) ^ (pc >> 24) ^ (pc >> 36)) & 0xfff) as u16
}

/// One Filter Table entry: a region seen exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterEntry {
    /// Hashed PC of the trigger instruction.
    pub trigger_pc: u16,
    /// Offset of the trigger access within the region.
    pub trigger_offset: usize,
}

/// The Filter Table.
#[derive(Debug, Clone)]
pub struct FilterTable {
    table: SetAssocTable<FilterEntry>,
}

impl FilterTable {
    /// Creates a filter table with `entries` total entries and `ways`
    /// associativity.
    pub fn new(entries: usize, ways: usize) -> Self {
        FilterTable {
            table: SetAssocTable::new(TableConfig::new((entries / ways).max(1), ways)),
        }
    }

    /// Looks up a region, refreshing its recency.
    pub fn get(&mut self, region: u64) -> Option<FilterEntry> {
        self.table.get(region, region).copied()
    }

    /// Inserts a newly triggered region.
    pub fn insert(&mut self, region: u64, entry: FilterEntry) {
        self.table.insert(region, region, entry);
    }

    /// Removes a region (when it graduates to the Accumulation Table).
    pub fn remove(&mut self, region: u64) -> Option<FilterEntry> {
        self.table.remove(region, region)
    }

    /// Number of tracked regions.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

/// One Accumulation Table entry: an active region under tracking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccumEntry {
    /// Hashed PC of the trigger instruction.
    pub trigger_pc: u16,
    /// The first accessed offsets, in order (up to four are used by the
    /// Fig. 4 sensitivity study; the paper's Gaze uses the first two).
    pub initial_offsets: Vec<usize>,
    /// Offset of the most recent access.
    pub last_offset: usize,
    /// Offset of the access before the most recent one.
    pub penultimate_offset: usize,
    /// Accumulated spatial footprint.
    pub footprint: Footprint,
    /// Whether the region-based stride backup / promotion is armed.
    pub stride_flag: bool,
    /// Whether prefetching has already been awakened for this region.
    pub prefetch_triggered: bool,
}

impl AccumEntry {
    /// Creates an entry from the first two distinct accesses of a region.
    pub fn new(
        blocks_per_region: usize,
        trigger_pc: u16,
        trigger_offset: usize,
        second_offset: usize,
    ) -> Self {
        let mut footprint = Footprint::new(blocks_per_region);
        footprint.set(trigger_offset);
        footprint.set(second_offset);
        AccumEntry {
            trigger_pc,
            initial_offsets: vec![trigger_offset, second_offset],
            last_offset: second_offset,
            penultimate_offset: trigger_offset,
            footprint,
            stride_flag: false,
            prefetch_triggered: false,
        }
    }

    /// The trigger (first) offset.
    pub fn trigger_offset(&self) -> usize {
        self.initial_offsets[0]
    }

    /// The second accessed offset.
    pub fn second_offset(&self) -> usize {
        self.initial_offsets[1]
    }

    /// Records a new access, returning the two most recent strides
    /// `(previous, current)` in block units.
    pub fn record_access(&mut self, offset: usize, max_initial: usize) -> (i64, i64) {
        let prev_stride = self.last_offset as i64 - self.penultimate_offset as i64;
        let cur_stride = offset as i64 - self.last_offset as i64;
        if !self.footprint.get(offset) && self.initial_offsets.len() < max_initial {
            self.initial_offsets.push(offset);
        }
        self.footprint.set(offset);
        self.penultimate_offset = self.last_offset;
        self.last_offset = offset;
        (prev_stride, cur_stride)
    }

    /// Whether this region's first two accesses are block 0 followed by
    /// block 1 — the spatial-streaming signature used by the dense path.
    pub fn is_streaming_signature(&self) -> bool {
        self.trigger_offset() == 0 && self.second_offset() == 1
    }
}

/// The Accumulation Table.
#[derive(Debug, Clone)]
pub struct AccumulationTable {
    table: SetAssocTable<AccumEntry>,
}

impl AccumulationTable {
    /// Creates an accumulation table with `entries` total entries and `ways`
    /// associativity.
    pub fn new(entries: usize, ways: usize) -> Self {
        AccumulationTable {
            table: SetAssocTable::new(TableConfig::new((entries / ways).max(1), ways)),
        }
    }

    /// Whether a region is currently tracked.
    pub fn contains(&self, region: u64) -> bool {
        self.table.peek(region, region).is_some()
    }

    /// Mutable access to a tracked region, refreshing its recency.
    pub fn get_mut(&mut self, region: u64) -> Option<&mut AccumEntry> {
        self.table.get_mut(region, region)
    }

    /// Starts tracking a region. Returns the `(region, entry)` evicted by
    /// LRU replacement, if any — the caller must learn its pattern (this is
    /// one of the two region-deactivation events).
    pub fn insert(&mut self, region: u64, entry: AccumEntry) -> Option<(u64, AccumEntry)> {
        self.table.insert(region, region, entry)
    }

    /// Stops tracking a region and returns its entry (the other deactivation
    /// event: one of its blocks was evicted from the cache).
    pub fn remove(&mut self, region: u64) -> Option<AccumEntry> {
        self.table.remove(region, region)
    }

    /// Number of tracked regions.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Iterates over tracked `(region, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &AccumEntry)> {
        self.table.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_pc_fits_in_12_bits() {
        for pc in [0u64, 0x400123, 0xffff_ffff_ffff_ffff, 0x5555_5555_5555] {
            assert!(hash_pc(pc) < 4096);
        }
        // Different PCs usually hash differently.
        assert_ne!(hash_pc(0x400000), hash_pc(0x400004));
    }

    #[test]
    fn filter_table_insert_get_remove() {
        let mut ft = FilterTable::new(64, 8);
        ft.insert(
            7,
            FilterEntry {
                trigger_pc: 1,
                trigger_offset: 5,
            },
        );
        assert_eq!(ft.get(7).unwrap().trigger_offset, 5);
        assert_eq!(ft.remove(7).unwrap().trigger_pc, 1);
        assert!(ft.get(7).is_none());
        assert!(ft.is_empty());
    }

    #[test]
    fn filter_table_capacity_is_bounded() {
        let mut ft = FilterTable::new(64, 8);
        for region in 0..1000u64 {
            ft.insert(
                region,
                FilterEntry {
                    trigger_pc: 0,
                    trigger_offset: 0,
                },
            );
        }
        assert!(ft.len() <= 64);
    }

    #[test]
    fn accum_entry_tracks_strides_and_footprint() {
        let mut e = AccumEntry::new(64, 0, 3, 4);
        assert_eq!(e.trigger_offset(), 3);
        assert_eq!(e.second_offset(), 4);
        let (prev, cur) = e.record_access(5, 2);
        assert_eq!((prev, cur), (1, 1));
        let (prev, cur) = e.record_access(9, 2);
        assert_eq!((prev, cur), (1, 4));
        assert_eq!(e.footprint.population(), 4);
        // Initial offsets are capped at `max_initial`.
        assert_eq!(e.initial_offsets, vec![3, 4]);
    }

    #[test]
    fn accum_entry_collects_up_to_four_initial_offsets() {
        let mut e = AccumEntry::new(64, 0, 10, 11);
        e.record_access(12, 4);
        e.record_access(13, 4);
        e.record_access(14, 4);
        assert_eq!(e.initial_offsets, vec![10, 11, 12, 13]);
    }

    #[test]
    fn streaming_signature_detection() {
        assert!(AccumEntry::new(64, 0, 0, 1).is_streaming_signature());
        assert!(!AccumEntry::new(64, 0, 1, 2).is_streaming_signature());
        assert!(!AccumEntry::new(64, 0, 0, 2).is_streaming_signature());
    }

    #[test]
    fn accumulation_table_eviction_returns_victim_for_learning() {
        let mut at = AccumulationTable::new(8, 8);
        for region in 0..8u64 {
            assert!(at.insert(region, AccumEntry::new(64, 0, 0, 1)).is_none());
        }
        let evicted = at.insert(100, AccumEntry::new(64, 0, 2, 3));
        assert!(evicted.is_some());
        assert!(at.len() <= 8);
    }

    #[test]
    fn repeated_access_to_same_offset_does_not_change_initials() {
        let mut e = AccumEntry::new(64, 0, 0, 1);
        e.record_access(1, 4);
        assert_eq!(e.initial_offsets, vec![0, 1]);
        assert_eq!(e.footprint.population(), 2);
    }
}
