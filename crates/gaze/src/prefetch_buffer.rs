//! The Prefetch Buffer (PB).
//!
//! A single prefetch decision for a region produces many block requests that
//! share the same region number, so Gaze stores them as one entry: a region
//! tag plus a 2-bit state per offset (*no prefetch*, *to L1D*, *to L2C*, *to
//! LLC*). The buffer also smooths issuance — a bounded number of requests is
//! drained per cycle — and merges the stage-2 aggressiveness promotions into
//! a pattern that is already queued (lower part of Fig. 3b).

use prefetch_common::addr::RegionGeometry;
use prefetch_common::request::{FillLevel, PrefetchRequest};
use prefetch_common::sink::RequestSink;
use prefetch_common::table::{SetAssocTable, TableConfig};

/// Per-offset prefetch state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OffsetState {
    /// Do not prefetch this block.
    #[default]
    None,
    /// Prefetch into the L1D.
    L1,
    /// Prefetch into the L2C.
    L2,
    /// Prefetch into the LLC (unused by Gaze but representable in 2 bits).
    Llc,
}

impl OffsetState {
    fn fill_level(self) -> Option<FillLevel> {
        match self {
            OffsetState::None => None,
            OffsetState::L1 => Some(FillLevel::L1),
            OffsetState::L2 => Some(FillLevel::L2),
            OffsetState::Llc => Some(FillLevel::Llc),
        }
    }

    fn more_aggressive_than(self, other: OffsetState) -> bool {
        fn rank(s: OffsetState) -> u8 {
            match s {
                OffsetState::L1 => 3,
                OffsetState::L2 => 2,
                OffsetState::Llc => 1,
                OffsetState::None => 0,
            }
        }
        rank(self) > rank(other)
    }
}

/// A per-region prefetch pattern: one [`OffsetState`] per block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefetchPattern {
    states: Vec<OffsetState>,
}

impl PrefetchPattern {
    /// Creates an all-`None` pattern for a region of `blocks` blocks.
    pub fn new(blocks: usize) -> Self {
        PrefetchPattern {
            states: vec![OffsetState::None; blocks],
        }
    }

    /// Number of block slots.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether no block is marked for prefetching.
    pub fn is_empty(&self) -> bool {
        self.states.iter().all(|s| *s == OffsetState::None)
    }

    /// Sets the state of one offset.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is out of range.
    pub fn set(&mut self, offset: usize, state: OffsetState) {
        self.states[offset] = state;
    }

    /// The state of one offset.
    pub fn get(&self, offset: usize) -> OffsetState {
        self.states[offset]
    }

    /// Merges `other` into `self`, keeping the more aggressive level per
    /// offset (used for stage-2 promotions).
    pub fn merge_promote(&mut self, other: &PrefetchPattern) {
        assert_eq!(self.len(), other.len(), "pattern lengths must match");
        for (a, b) in self.states.iter_mut().zip(&other.states) {
            if b.more_aggressive_than(*a) {
                *a = *b;
            }
        }
    }

    /// Number of offsets marked for prefetching.
    pub fn population(&self) -> usize {
        self.states
            .iter()
            .filter(|s| **s != OffsetState::None)
            .count()
    }
}

#[derive(Debug, Clone)]
struct PbEntry {
    pattern: PrefetchPattern,
    /// Next offset position (relative to the issue origin) to consider.
    cursor: usize,
    /// Offset from which issuance proceeds (the trigger offset).
    origin: usize,
}

/// The Prefetch Buffer.
#[derive(Debug, Clone)]
pub struct PrefetchBuffer {
    table: SetAssocTable<PbEntry>,
    geometry: RegionGeometry,
    drain_per_cycle: usize,
}

impl PrefetchBuffer {
    /// Creates a buffer with `entries` region slots, `ways` associativity,
    /// draining at most `drain_per_cycle` requests per cycle.
    pub fn new(
        entries: usize,
        ways: usize,
        drain_per_cycle: usize,
        geometry: RegionGeometry,
    ) -> Self {
        PrefetchBuffer {
            table: SetAssocTable::new(TableConfig::new((entries / ways).max(1), ways)),
            geometry,
            drain_per_cycle: drain_per_cycle.max(1),
        }
    }

    /// Number of buffered regions.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the buffer holds no regions.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Queues (or merges) a prefetch pattern for `region`. Issuance starts at
    /// `origin` (the trigger offset) and proceeds towards higher offsets,
    /// wrapping around the region.
    pub fn push(&mut self, region: u64, origin: usize, pattern: PrefetchPattern) {
        if pattern.is_empty() {
            return;
        }
        if let Some(entry) = self.table.get_mut(region, region) {
            entry.pattern.merge_promote(&pattern);
            return;
        }
        self.table.insert(
            region,
            region,
            PbEntry {
                pattern,
                cursor: 0,
                origin,
            },
        );
    }

    /// Promotes already-buffered offsets of `region` to the L1D (stage-2
    /// aggressiveness promotion). Offsets not yet buffered are added.
    pub fn promote(&mut self, region: u64, offsets: &[usize]) {
        let blocks = self.geometry.blocks_per_region();
        let mut promo = PrefetchPattern::new(blocks);
        for &o in offsets {
            if o < blocks {
                promo.set(o, OffsetState::L1);
            }
        }
        self.push(region, offsets.first().copied().unwrap_or(0), promo);
    }

    /// Drains up to the per-cycle limit of requests, in issue order, into
    /// `sink`. Allocation-free: finished regions are tracked in a fixed
    /// inline array (entries finishing in one call are bounded by the drain
    /// budget in practice); the rare overflow falls back to a second sweep.
    pub fn drain_into(&mut self, sink: &mut RequestSink) {
        let blocks = self.geometry.blocks_per_region();
        let budget = self.drain_per_cycle;
        let mut emitted = 0usize;
        let mut finished: [u64; 8] = [0; 8];
        let mut finished_len = 0usize;
        let mut finished_overflow = false;
        for (region, entry) in self.table.iter_mut() {
            while entry.cursor < blocks && emitted < budget {
                let offset = (entry.origin + entry.cursor) % blocks;
                entry.cursor += 1;
                if let Some(level) = entry.pattern.get(offset).fill_level() {
                    let block = self
                        .geometry
                        .block_at(prefetch_common::addr::RegionId::new(region), offset);
                    sink.push(PrefetchRequest::new(block, level));
                    emitted += 1;
                }
            }
            if entry.cursor >= blocks {
                if finished_len < finished.len() {
                    finished[finished_len] = region;
                    finished_len += 1;
                } else {
                    finished_overflow = true;
                }
            }
            if emitted >= budget {
                break;
            }
        }
        for &region in &finished[..finished_len] {
            self.table.remove(region, region);
        }
        if finished_overflow {
            // Extremely rare (more than 8 regions completed in one call):
            // sweep again for any remaining fully-drained entries.
            let blocks = self.geometry.blocks_per_region();
            let done: Vec<u64> = self
                .table
                .iter()
                .filter(|(_, e)| e.cursor >= blocks)
                .map(|(region, _)| region)
                .collect();
            for region in done {
                self.table.remove(region, region);
            }
        }
    }

    /// Test/diagnostic helper: drains one cycle's worth of requests into a
    /// fresh `Vec` (allocates; use [`drain_into`](Self::drain_into) on the
    /// hot path).
    pub fn drain(&mut self) -> Vec<PrefetchRequest> {
        let mut sink = RequestSink::new();
        self.drain_into(&mut sink);
        sink.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefetch_common::addr::RegionGeometry;

    fn geometry() -> RegionGeometry {
        RegionGeometry::gaze_default()
    }

    fn pattern_l1(offsets: &[usize]) -> PrefetchPattern {
        let mut p = PrefetchPattern::new(64);
        for &o in offsets {
            p.set(o, OffsetState::L1);
        }
        p
    }

    #[test]
    fn drain_respects_per_cycle_limit_and_order() {
        let mut pb = PrefetchBuffer::new(32, 8, 2, geometry());
        pb.push(5, 3, pattern_l1(&[3, 4, 5, 6]));
        let first = pb.drain();
        assert_eq!(first.len(), 2);
        assert_eq!(
            first[0].block,
            geometry().block_at(prefetch_common::addr::RegionId::new(5), 3)
        );
        assert_eq!(
            first[1].block,
            geometry().block_at(prefetch_common::addr::RegionId::new(5), 4)
        );
        let second = pb.drain();
        assert_eq!(second.len(), 2);
        // Entry is removed once fully drained.
        while !pb.is_empty() {
            pb.drain();
        }
        assert!(pb.drain().is_empty());
    }

    #[test]
    fn issue_order_wraps_from_trigger_offset() {
        let mut pb = PrefetchBuffer::new(32, 8, 64, geometry());
        pb.push(1, 62, pattern_l1(&[62, 63, 0, 1]));
        let reqs = pb.drain();
        let offsets: Vec<usize> = reqs
            .iter()
            .map(|r| geometry().offset_of(r.block.base_addr()))
            .collect();
        assert_eq!(offsets, vec![62, 63, 0, 1]);
    }

    #[test]
    fn mixed_fill_levels_preserved() {
        let mut pb = PrefetchBuffer::new(32, 8, 64, geometry());
        let mut p = PrefetchPattern::new(64);
        p.set(0, OffsetState::L1);
        p.set(1, OffsetState::L2);
        pb.push(9, 0, p);
        let reqs = pb.drain();
        assert_eq!(reqs[0].fill_level, FillLevel::L1);
        assert_eq!(reqs[1].fill_level, FillLevel::L2);
    }

    #[test]
    fn promotion_merges_into_existing_entry() {
        let mut pb = PrefetchBuffer::new(32, 8, 64, geometry());
        let mut p = PrefetchPattern::new(64);
        for o in 0..8 {
            p.set(o, OffsetState::L2);
        }
        pb.push(2, 0, p);
        // Promote offsets 4..8 to the L1 before anything drains.
        pb.promote(2, &[4, 5, 6, 7]);
        let reqs = pb.drain();
        let l1: Vec<usize> = reqs
            .iter()
            .filter(|r| r.fill_level == FillLevel::L1)
            .map(|r| geometry().offset_of(r.block.base_addr()))
            .collect();
        assert_eq!(l1, vec![4, 5, 6, 7]);
        assert_eq!(reqs.len(), 8);
    }

    #[test]
    fn empty_patterns_are_not_buffered() {
        let mut pb = PrefetchBuffer::new(32, 8, 4, geometry());
        pb.push(1, 0, PrefetchPattern::new(64));
        assert!(pb.is_empty());
    }

    #[test]
    fn merge_promote_never_downgrades() {
        let mut a = pattern_l1(&[1, 2]);
        let mut b = PrefetchPattern::new(64);
        b.set(1, OffsetState::L2);
        b.set(3, OffsetState::L2);
        a.merge_promote(&b);
        assert_eq!(a.get(1), OffsetState::L1);
        assert_eq!(a.get(3), OffsetState::L2);
        assert_eq!(a.population(), 3);
        // Merging the other way upgrades.
        b.merge_promote(&pattern_l1(&[3]));
        assert_eq!(b.get(3), OffsetState::L1);
    }

    #[test]
    fn capacity_is_bounded_by_entries() {
        let mut pb = PrefetchBuffer::new(32, 8, 4, geometry());
        for region in 0..100u64 {
            pb.push(region, 0, pattern_l1(&[0]));
        }
        assert!(pb.len() <= 32);
    }
}
