//! The Gaze prefetcher: glue between the Filter Table, Accumulation Table,
//! Pattern History Module (PHT + streaming module) and the Prefetch Buffer.
//!
//! The access flow follows Fig. 3b of the paper:
//!
//! 1. a load first checks the Accumulation Table (AT); tracked regions update
//!    their footprint and may fire the stage-2 stride promotion,
//! 2. otherwise the Filter Table (FT) is checked; a second distinct access
//!    graduates the region into the AT and — this is Gaze's key idea — sends
//!    the *trigger offset, second offset and trigger PC* to the Pattern
//!    History Module, which decides whether and how aggressively to prefetch,
//! 3. regions deactivate when a block of theirs is evicted from the L1D or
//!    when their AT entry is replaced; the accumulated footprint is then
//!    learned (streaming regions train the DPCT/DC, everything else the PHT),
//! 4. prefetch patterns are staged in the Prefetch Buffer and drained a few
//!    blocks per cycle.

use prefetch_common::access::DemandAccess;
use prefetch_common::addr::{BlockAddr, RegionGeometry};
use prefetch_common::prefetcher::{Prefetcher, PrefetcherStats};
use prefetch_common::sink::RequestSink;

use crate::config::{Characterization, GazeConfig};
use crate::dense::{StreamConfidence, StreamingModule};
use crate::pht::PatternHistoryTable;
use crate::prefetch_buffer::{OffsetState, PrefetchBuffer, PrefetchPattern};
use crate::tables::{hash_pc, AccumEntry, AccumulationTable, FilterEntry, FilterTable};

/// The Gaze spatial prefetcher (HPCA 2025).
#[derive(Debug)]
pub struct Gaze {
    cfg: GazeConfig,
    geom: RegionGeometry,
    name: String,
    ft: FilterTable,
    at: AccumulationTable,
    pht: PatternHistoryTable,
    streaming: StreamingModule,
    pb: PrefetchBuffer,
    stats: PrefetcherStats,
}

impl Gaze {
    /// Creates a Gaze prefetcher with the paper's default configuration.
    pub fn new() -> Self {
        Self::with_config(GazeConfig::paper_default())
    }

    /// Creates a Gaze prefetcher from an explicit configuration.
    pub fn with_config(cfg: GazeConfig) -> Self {
        Self::with_config_and_name(cfg, "gaze")
    }

    /// Creates a named variant (used by the ablation experiments so reports
    /// can distinguish `gaze`, `gaze-pht`, `offset`, `pht4ss`, `sm4ss`, ...).
    pub fn with_config_and_name(cfg: GazeConfig, name: impl Into<String>) -> Self {
        let geom = RegionGeometry::new(cfg.region_size, cfg.block_size);
        let blocks = cfg.blocks_per_region();
        Gaze {
            geom,
            name: name.into(),
            ft: FilterTable::new(cfg.ft_entries, cfg.ft_ways),
            at: AccumulationTable::new(cfg.at_entries, cfg.at_ways),
            pht: PatternHistoryTable::new(cfg.pht_entries, cfg.pht_ways, blocks),
            streaming: StreamingModule::new(cfg.dpct_entries, cfg.dc_bits),
            pb: PrefetchBuffer::new(cfg.pb_entries, cfg.pb_ways, cfg.pb_drain_per_cycle, geom),
            stats: PrefetcherStats::default(),
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GazeConfig {
        &self.cfg
    }

    fn accesses_required(&self) -> usize {
        self.cfg.characterization.accesses_required()
    }

    fn initial_event<'a>(&self, entry: &'a AccumEntry) -> &'a [usize] {
        let k = self
            .accesses_required()
            .max(1)
            .min(entry.initial_offsets.len());
        &entry.initial_offsets[..k]
    }

    /// Builds the prediction for a region whose initial-access event is now
    /// complete, queues it in the Prefetch Buffer, and arms the stride flag
    /// where the paper prescribes it.
    fn awaken_prefetch(&mut self, region: u64, entry: &mut AccumEntry) {
        entry.prefetch_triggered = true;
        self.stats.trainings += 1;
        let streaming_signature = entry.is_streaming_signature();
        if self.cfg.paths.streaming_regions_only && !streaming_signature {
            return;
        }

        let blocks = self.cfg.blocks_per_region();
        let trigger = entry.trigger_offset();
        let mut pattern = PrefetchPattern::new(blocks);

        if streaming_signature && self.cfg.paths.streaming_module {
            // Stage 1 of the two-stage aggressiveness control.
            match self.streaming.confidence(entry.trigger_pc) {
                StreamConfidence::High => {
                    for o in 0..blocks {
                        if entry.footprint.get(o) {
                            continue;
                        }
                        let state = if o < self.cfg.dense_l1_blocks {
                            OffsetState::L1
                        } else {
                            OffsetState::L2
                        };
                        pattern.set(o, state);
                    }
                }
                StreamConfidence::Moderate => {
                    for o in 0..blocks.min(self.cfg.dense_l1_blocks) {
                        if !entry.footprint.get(o) {
                            pattern.set(o, OffsetState::L2);
                        }
                    }
                }
                StreamConfidence::None => {}
            }
            if self.cfg.paths.stride_backup {
                entry.stride_flag = true;
            }
        } else if self.cfg.paths.pht
            && (!streaming_signature || self.cfg.paths.pht_handles_streaming)
        {
            let event: Vec<usize> = self.initial_event(entry).to_vec();
            match self.pht.lookup(&event) {
                Some(footprint) => {
                    // The PHT prefetches all predicted blocks into the L1D
                    // (§III-D); blocks already demanded are skipped.
                    for o in footprint.iter_set() {
                        if o < blocks && !entry.footprint.get(o) {
                            pattern.set(o, OffsetState::L1);
                        }
                    }
                }
                None => {
                    if self.cfg.paths.stride_backup {
                        entry.stride_flag = true;
                    }
                }
            }
        } else if self.cfg.paths.stride_backup {
            entry.stride_flag = true;
        }

        if !pattern.is_empty() {
            self.stats.issued += pattern.population() as u64;
            self.pb.push(region, trigger, pattern);
        }
    }

    /// Learns the pattern of a deactivated region.
    fn learn_region(&mut self, entry: &AccumEntry) {
        let streaming_signature = entry.is_streaming_signature();
        if self.cfg.paths.streaming_regions_only && !streaming_signature {
            return;
        }
        if streaming_signature && self.cfg.paths.streaming_module {
            self.streaming
                .learn(entry.trigger_pc, entry.footprint.is_full());
            return;
        }
        if self.cfg.paths.pht && (!streaming_signature || self.cfg.paths.pht_handles_streaming) {
            let k = self.accesses_required();
            if entry.initial_offsets.len() >= k {
                let event: Vec<usize> = entry.initial_offsets[..k].to_vec();
                self.pht.learn(&event, entry.footprint.clone());
            }
        }
    }

    /// Stage-2 / backup: region-based stride promotion.
    fn stride_promotion(
        &mut self,
        region: u64,
        entry: &AccumEntry,
        prev_stride: i64,
        cur_stride: i64,
    ) {
        if !self.cfg.paths.stride_backup || !entry.stride_flag {
            return;
        }
        if prev_stride != cur_stride || cur_stride == 0 {
            return;
        }
        let blocks = self.cfg.blocks_per_region() as i64;
        let mut offsets = Vec::with_capacity(self.cfg.stride_promote);
        for i in 0..self.cfg.stride_promote as i64 {
            let o = entry.last_offset as i64 + cur_stride * (self.cfg.stride_skip as i64 + 1 + i);
            if o >= 0 && o < blocks {
                offsets.push(o as usize);
            }
        }
        if !offsets.is_empty() {
            self.stats.issued += offsets.len() as u64;
            self.pb.promote(region, &offsets);
        }
    }

    /// Handles an access to a region already tracked in the AT.
    fn tracked_access(&mut self, region: u64, offset: usize) {
        let max_initial = self.accesses_required().max(2);
        let Some(mut entry) = self.at.remove(region) else {
            return;
        };
        let (prev, cur) = entry.record_access(offset, max_initial);
        if !entry.prefetch_triggered && entry.initial_offsets.len() >= self.accesses_required() {
            self.awaken_prefetch(region, &mut entry);
        }
        self.stride_promotion(region, &entry, prev, cur);
        if let Some((victim_region, victim)) = self.at.insert(region, entry) {
            debug_assert_ne!(victim_region, region);
            self.learn_region(&victim);
        }
    }

    /// Handles the graduation of a region from FT to AT on its second
    /// distinct access.
    fn activate_region(&mut self, region: u64, ft_entry: FilterEntry, second_offset: usize) {
        let mut entry = AccumEntry::new(
            self.cfg.blocks_per_region(),
            ft_entry.trigger_pc,
            ft_entry.trigger_offset,
            second_offset,
        );
        if self.accesses_required() <= 2 {
            self.awaken_prefetch(region, &mut entry);
        }
        if let Some((_, victim)) = self.at.insert(region, entry) {
            self.learn_region(&victim);
        }
    }
}

impl Default for Gaze {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for Gaze {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_access(&mut self, access: &DemandAccess, _cache_hit: bool, _sink: &mut RequestSink) {
        // Gaze trains on loads only (§III-A).
        if !access.kind.is_load() {
            return;
        }
        self.stats.accesses += 1;
        let region = self.geom.region_of(access.addr).raw();
        let offset = self.geom.offset_of(access.addr);

        if self.at.contains(region) {
            self.tracked_access(region, offset);
        } else if let Some(ft_entry) = self.ft.get(region) {
            if ft_entry.trigger_offset != offset {
                self.ft.remove(region);
                self.activate_region(region, ft_entry, offset);
            }
        } else {
            self.ft.insert(
                region,
                FilterEntry {
                    trigger_pc: hash_pc(access.pc),
                    trigger_offset: offset,
                },
            );
            // The trigger-only characterization (the `Offset` baseline)
            // awakens prefetching on the very first access to a region.
            if self.cfg.characterization == Characterization::TriggerOnly && self.cfg.paths.pht {
                if let Some(footprint) = self.pht.lookup(&[offset]) {
                    let blocks = self.cfg.blocks_per_region();
                    let mut pattern = PrefetchPattern::new(blocks);
                    for o in footprint.iter_set() {
                        if o < blocks && o != offset {
                            pattern.set(o, OffsetState::L1);
                        }
                    }
                    if !pattern.is_empty() {
                        self.stats.issued += pattern.population() as u64;
                        self.pb.push(region, offset, pattern);
                    }
                }
            }
        }
        // Requests are issued via the Prefetch Buffer on `tick`.
    }

    fn on_evict(&mut self, block: BlockAddr) {
        let region = self.geom.region_of_block(block).raw();
        if let Some(entry) = self.at.remove(region) {
            self.learn_region(&entry);
        }
    }

    fn tick(&mut self, sink: &mut RequestSink) {
        self.pb.drain_into(sink);
    }

    fn next_ready_at(&self, now: u64) -> Option<u64> {
        // The Prefetch Buffer drains a few blocks on every tick while
        // non-empty, so the very next cycle can emit.
        (!self.pb.is_empty()).then_some(now + 1)
    }

    fn storage_bits(&self) -> u64 {
        self.cfg.storage_breakdown_bits().total_bits()
    }

    fn stats(&self) -> PrefetcherStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefetch_common::prefetcher::PrefetcherExt;
    use prefetch_common::request::{FillLevel, PrefetchRequest};

    /// Feeds `offsets` of `region` (4 KB regions) as loads with PC `pc` and
    /// returns every request produced (via on_access and tick).
    fn feed(gaze: &mut Gaze, pc: u64, region: u64, offsets: &[usize]) -> Vec<PrefetchRequest> {
        let mut out = Vec::new();
        for &o in offsets {
            let addr = region * 4096 + (o as u64) * 64;
            out.extend(gaze.on_access_vec(&DemandAccess::load(pc, addr), false));
            // Drain generously so tests observe the full pattern.
            for _ in 0..64 {
                out.extend(gaze.tick_vec());
            }
        }
        out
    }

    /// Deactivates a region by evicting one of its blocks from the cache.
    fn deactivate(gaze: &mut Gaze, region: u64) {
        gaze.on_evict(BlockAddr::new(region * 64));
    }

    fn offsets_of(reqs: &[PrefetchRequest]) -> Vec<usize> {
        let geom = RegionGeometry::gaze_default();
        reqs.iter()
            .map(|r| geom.offset_of(r.block.base_addr()))
            .collect()
    }

    #[test]
    fn no_prefetch_without_learned_pattern_or_stride() {
        let mut g = Gaze::new();
        // Irregular offsets: no PHT experience and no matching strides, so
        // neither the pattern path nor the stride backup may fire.
        let reqs = feed(&mut g, 0x400, 10, &[5, 9, 20, 2]);
        assert!(
            reqs.is_empty(),
            "an untrained Gaze must not prefetch, got {reqs:?}"
        );
    }

    #[test]
    fn learned_pattern_replayed_on_matching_event() {
        let mut g = Gaze::new();
        // Region A: accesses 5, 9, 13, 17 -> learn pattern for event (5, 9).
        feed(&mut g, 0x400, 1, &[5, 9, 13, 17]);
        deactivate(&mut g, 1);
        // Region B triggers with the same event (5 then 9): the learned
        // footprint {5,9,13,17} is predicted; already-seen blocks excluded.
        let reqs = feed(&mut g, 0x400, 2, &[5, 9]);
        let mut offs = offsets_of(&reqs);
        offs.sort_unstable();
        assert_eq!(offs, vec![13, 17]);
        assert!(reqs.iter().all(|r| r.fill_level == FillLevel::L1));
    }

    #[test]
    fn strict_matching_rejects_reordered_event() {
        let mut g = Gaze::new();
        feed(&mut g, 0x400, 1, &[5, 9, 13, 17]);
        deactivate(&mut g, 1);
        // Same two blocks in the opposite temporal order: no prediction.
        let reqs = feed(&mut g, 0x400, 2, &[9, 5]);
        assert!(reqs.is_empty());
    }

    #[test]
    fn strict_matching_rejects_different_second_offset() {
        let mut g = Gaze::new();
        feed(&mut g, 0x400, 1, &[5, 9, 13, 17]);
        deactivate(&mut g, 1);
        let reqs = feed(&mut g, 0x400, 2, &[5, 10]);
        assert!(
            reqs.is_empty(),
            "partial (trigger-only) match must not awaken prefetching"
        );
    }

    #[test]
    fn one_bit_regions_never_learn_patterns() {
        let mut g = Gaze::new();
        // Region touched once, then deactivated: FT filters it out.
        feed(&mut g, 0x400, 1, &[7]);
        deactivate(&mut g, 1);
        let reqs = feed(&mut g, 0x400, 2, &[7, 8]);
        assert!(reqs.is_empty());
    }

    #[test]
    fn dense_streaming_uses_two_stage_control() {
        let mut g = Gaze::new();
        // Train: several regions fully swept starting at block 0 then 1.
        for region in 1..=6u64 {
            let all: Vec<usize> = (0..64).collect();
            feed(&mut g, 0x400, region, &all);
            deactivate(&mut g, region);
        }
        // A new region with the streaming signature and a dense trigger PC
        // gets the high-aggressiveness pattern: 16 blocks to L1, rest to L2.
        let reqs = feed(&mut g, 0x400, 100, &[0, 1]);
        let l1 = reqs
            .iter()
            .filter(|r| r.fill_level == FillLevel::L1)
            .count();
        let l2 = reqs
            .iter()
            .filter(|r| r.fill_level == FillLevel::L2)
            .count();
        assert_eq!(
            l1 + l2,
            62,
            "all remaining blocks of the region are prefetched"
        );
        assert_eq!(
            l1, 14,
            "first 16 blocks (minus the 2 already accessed) go to L1"
        );
        assert_eq!(l2, 48);
    }

    #[test]
    fn unknown_pc_with_low_counter_does_not_stream_prefetch() {
        let mut g = Gaze::new();
        // One dense region is not enough to saturate confidence for unknown PCs.
        let all: Vec<usize> = (0..64).collect();
        feed(&mut g, 0x400, 1, &all);
        deactivate(&mut g, 1);
        let reqs = feed(&mut g, 0x999, 50, &[0, 1]);
        assert!(
            reqs.is_empty(),
            "unknown PC with unsaturated DC must refrain from prefetching"
        );
    }

    #[test]
    fn non_dense_streaming_regions_decay_confidence() {
        let mut g = Gaze::new();
        let all: Vec<usize> = (0..64).collect();
        for region in 1..=8u64 {
            feed(&mut g, 0x400, region, &all);
            deactivate(&mut g, region);
        }
        // Now several streaming-signature regions that are NOT dense.
        for region in 20..=40u64 {
            feed(&mut g, 0x500, region, &[0, 1, 2, 3]);
            deactivate(&mut g, region);
        }
        // Unknown PC: the dense counter has decayed, so no stream prefetch.
        let reqs = feed(&mut g, 0x777, 99, &[0, 1]);
        assert!(reqs.is_empty());
    }

    #[test]
    fn stride_backup_promotes_after_matching_strides() {
        let mut g = Gaze::new();
        // Event (3,4) unknown -> PHT miss -> stride_flag armed. Each further
        // access with two matching unit strides promotes the next 4 blocks
        // with 2 skipped: at access 5 -> {8..11}, at access 6 -> {9..12}.
        let reqs = feed(&mut g, 0x400, 7, &[3, 4, 5, 6]);
        let mut offs = offsets_of(&reqs);
        offs.sort_unstable();
        offs.dedup();
        assert_eq!(offs, vec![8, 9, 10, 11, 12]);
        assert!(reqs.iter().all(|r| r.fill_level == FillLevel::L1));
    }

    #[test]
    fn stride_backup_handles_non_unit_strides() {
        let mut g = Gaze::new();
        let reqs = feed(&mut g, 0x400, 7, &[0, 2, 4, 6]);
        // Trigger 0, second 2 -> not the streaming signature; PHT miss ->
        // backup armed; strides (2,2) at accesses 4 and 6 promote
        // {10,12,14,16} and {12,14,16,18}.
        let mut offs = offsets_of(&reqs);
        offs.sort_unstable();
        offs.dedup();
        assert_eq!(offs, vec![10, 12, 14, 16, 18]);
    }

    #[test]
    fn offset_variant_awakens_on_first_access() {
        let mut g = Gaze::with_config_and_name(GazeConfig::offset_only(), "offset");
        feed(&mut g, 0x400, 1, &[5, 9, 13]);
        deactivate(&mut g, 1);
        // A brand-new region triggered at offset 5 predicts immediately.
        let reqs = feed(&mut g, 0x123, 2, &[5]);
        let mut offs = offsets_of(&reqs);
        offs.sort_unstable();
        assert_eq!(offs, vec![9, 13]);
    }

    #[test]
    fn streaming_only_variants_ignore_other_regions() {
        let mut g = Gaze::with_config_and_name(GazeConfig::streaming_module_only(), "sm4ss");
        feed(&mut g, 0x400, 1, &[5, 9, 13, 17]);
        deactivate(&mut g, 1);
        let reqs = feed(&mut g, 0x400, 2, &[5, 9]);
        assert!(reqs.is_empty(), "SM4SS only operates on streaming regions");
    }

    #[test]
    fn four_access_characterization_waits_longer() {
        let mut g = Gaze::with_config(GazeConfig::paper_default().with_initial_accesses(4));
        feed(&mut g, 0x400, 1, &[5, 9, 13, 17, 21]);
        deactivate(&mut g, 1);
        // Only two matching accesses: not enough to awaken with k = 4.
        let partial = feed(&mut g, 0x400, 2, &[5, 9]);
        assert!(partial.is_empty());
        // All four aligned accesses: prediction fires.
        let full = feed(&mut g, 0x400, 3, &[5, 9, 13, 17]);
        let mut offs = offsets_of(&full);
        offs.sort_unstable();
        assert_eq!(offs, vec![21]);
    }

    #[test]
    fn at_eviction_learns_pattern() {
        let mut g = Gaze::new();
        // Fill the 64-entry AT with streaming... use distinct non-streaming regions.
        feed(&mut g, 0x400, 500, &[5, 9, 13]);
        // Activate 64 more regions to evict region 500 from the AT by LRU.
        for region in 1000..1064u64 {
            feed(&mut g, 0x500, region, &[2, 3]);
        }
        // Region 500's pattern must have been learned on eviction.
        let reqs = feed(&mut g, 0x400, 2000, &[5, 9]);
        let mut offs = offsets_of(&reqs);
        offs.sort_unstable();
        assert_eq!(offs, vec![13]);
    }

    #[test]
    fn storage_matches_config() {
        let g = Gaze::new();
        assert_eq!(
            g.storage_bits(),
            GazeConfig::paper_default()
                .storage_breakdown_bits()
                .total_bits()
        );
        assert!((g.storage_bits() as f64 / 8.0 / 1024.0 - 4.46).abs() < 0.05);
    }

    #[test]
    fn stores_are_ignored() {
        let mut g = Gaze::new();
        for o in 0..10usize {
            let addr = 4096 + o as u64 * 64;
            assert!(g
                .on_access_vec(&DemandAccess::store(0x1, addr), false)
                .is_empty());
        }
        assert_eq!(g.stats().accesses, 0);
        assert!(g.tick_vec().is_empty());
        assert_eq!(g.next_ready_at(0), None);
    }

    #[test]
    fn next_ready_tracks_prefetch_buffer_occupancy() {
        let mut g = Gaze::new();
        assert_eq!(g.next_ready_at(10), None);
        // Train one region, deactivate it, then re-trigger the learned
        // event *without* ticking, so predictions sit in the Prefetch
        // Buffer.
        feed(&mut g, 0x400, 1, &[5, 9, 13, 17]);
        deactivate(&mut g, 1);
        for &o in &[5usize, 9] {
            g.on_access_vec(&DemandAccess::load(0x400, 2 * 4096 + o as u64 * 64), false);
        }
        assert_eq!(
            g.next_ready_at(10),
            Some(11),
            "a non-empty Prefetch Buffer drains on the very next tick"
        );
        // Drain completely: readiness reverts to None.
        for _ in 0..300 {
            g.tick_vec();
        }
        assert_eq!(g.next_ready_at(10), None);
    }

    #[test]
    fn vgaze_large_regions_predict_across_4kb_boundaries() {
        let cfg = GazeConfig::paper_default().with_region_size(16 * 1024);
        let mut g = Gaze::with_config_and_name(cfg, "vgaze-16k");
        let geom = RegionGeometry::new(16 * 1024, 64);
        // Train one 16 KB region with blocks spanning two 4 KB pages.
        for &o in &[3usize, 70, 130, 200] {
            let addr = 16 * 1024 + (o as u64) * 64;
            g.on_access_vec(&DemandAccess::load(0x400, addr), false);
        }
        g.on_evict(BlockAddr::new((16 * 1024) / 64));
        // Replay the event in another 16 KB region.
        let mut reqs = Vec::new();
        for &o in &[3usize, 70] {
            let addr = 2 * 16 * 1024 + (o as u64) * 64;
            reqs.extend(g.on_access_vec(&DemandAccess::load(0x400, addr), false));
            for _ in 0..300 {
                reqs.extend(g.tick_vec());
            }
        }
        let offs: Vec<usize> = reqs
            .iter()
            .map(|r| geom.offset_of(r.block.base_addr()))
            .collect();
        assert!(
            offs.contains(&130) && offs.contains(&200),
            "cross-page offsets predicted: {offs:?}"
        );
    }
}
