//! The Pattern History Table (PHT).
//!
//! The PHT stores one bit-vector footprint per learned pattern. Its indexing
//! scheme is where Gaze encodes the footprint-internal temporal correlation
//! *without any extra metadata*: the **trigger offset** selects the set and
//! the **second offset** is the tag, so a lookup only hits when both the
//! spatial position *and* the temporal order of the first accesses match
//! (the paper's strict matching mechanism). The Fig. 4 sensitivity sweep
//! generalizes the tag to the concatenation of the 2nd..k-th offsets.

use prefetch_common::footprint::Footprint;
use prefetch_common::table::{SetAssocTable, TableConfig};

/// Pattern History Table: footprints indexed by the initial-access event.
#[derive(Debug, Clone)]
pub struct PatternHistoryTable {
    table: SetAssocTable<Footprint>,
    offset_bits: u32,
}

impl PatternHistoryTable {
    /// Creates a PHT with `entries` total entries, `ways` associativity and
    /// regions of `blocks_per_region` blocks.
    pub fn new(entries: usize, ways: usize, blocks_per_region: usize) -> Self {
        let sets = (entries / ways).max(1);
        PatternHistoryTable {
            table: SetAssocTable::new(TableConfig::new(sets, ways)),
            offset_bits: (blocks_per_region as u64).trailing_zeros(),
        }
    }

    /// Builds the `(index, tag)` pair for an initial-access event.
    ///
    /// The first offset is the index; the remaining offsets are concatenated
    /// into the tag, preserving their order. With the paper's two-access
    /// characterization the tag is simply the second offset. With
    /// trigger-only characterization (`offsets.len() == 1`) the tag is a
    /// constant, so any pattern learned for that trigger offset matches.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is empty.
    pub fn key(&self, offsets: &[usize]) -> (u64, u64) {
        assert!(
            !offsets.is_empty(),
            "at least the trigger offset is required"
        );
        let index = offsets[0] as u64;
        let mut tag = 1u64; // non-zero sentinel so an empty suffix still forms a valid tag
        for &o in &offsets[1..] {
            tag = (tag << self.offset_bits) | o as u64;
        }
        (index, tag)
    }

    /// Looks up the pattern for an initial-access event (strict match).
    pub fn lookup(&mut self, offsets: &[usize]) -> Option<Footprint> {
        let (index, tag) = self.key(offsets);
        self.table.get(index, tag).cloned()
    }

    /// Learns (or overwrites) the pattern for an initial-access event.
    pub fn learn(&mut self, offsets: &[usize], footprint: Footprint) {
        let (index, tag) = self.key(offsets);
        self.table.insert(index, tag, footprint);
    }

    /// Number of stored patterns.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pht() -> PatternHistoryTable {
        PatternHistoryTable::new(256, 4, 64)
    }

    #[test]
    fn learn_then_lookup_exact_event() {
        let mut p = pht();
        let fp = Footprint::from_offsets(64, [3, 4, 5, 9]);
        p.learn(&[3, 4], fp.clone());
        assert_eq!(p.lookup(&[3, 4]), Some(fp));
    }

    #[test]
    fn strict_matching_requires_both_offsets() {
        let mut p = pht();
        p.learn(&[3, 4], Footprint::from_offsets(64, [3, 4, 5]));
        // Same trigger, different second offset: no match.
        assert_eq!(p.lookup(&[3, 7]), None);
        // Different trigger, same second offset: no match.
        assert_eq!(p.lookup(&[2, 4]), None);
    }

    #[test]
    fn temporal_order_matters() {
        let mut p = pht();
        p.learn(&[3, 4], Footprint::from_offsets(64, [3, 4]));
        // The same two blocks accessed in the opposite order are a different
        // event — this is the temporal correlation the scheme captures.
        assert_eq!(p.lookup(&[4, 3]), None);
    }

    #[test]
    fn trigger_only_key_ignores_order_information() {
        let p = PatternHistoryTable::new(64, 1, 64);
        assert_eq!(p.key(&[5]), (5, 1));
        assert_eq!(p.key(&[5]).1, p.key(&[5]).1);
    }

    #[test]
    fn four_access_keys_distinguish_longer_events() {
        let mut p = pht();
        p.learn(&[0, 1, 2, 3], Footprint::from_offsets(64, 0..8));
        assert!(p.lookup(&[0, 1, 2, 3]).is_some());
        assert!(p.lookup(&[0, 1, 3, 2]).is_none());
        assert!(p.lookup(&[0, 1, 2]).is_none());
    }

    #[test]
    fn capacity_is_bounded() {
        let mut p = PatternHistoryTable::new(256, 4, 64);
        for trigger in 0..64usize {
            for second in 0..64usize {
                p.learn(&[trigger, second], Footprint::from_offsets(64, [trigger]));
            }
        }
        assert!(p.len() <= 256);
    }

    #[test]
    fn relearning_overwrites_previous_pattern() {
        let mut p = pht();
        p.learn(&[1, 2], Footprint::from_offsets(64, [1, 2]));
        p.learn(&[1, 2], Footprint::from_offsets(64, [1, 2, 3, 4]));
        assert_eq!(p.lookup(&[1, 2]).unwrap().population(), 4);
    }

    #[test]
    #[should_panic(expected = "trigger offset")]
    fn empty_event_rejected() {
        let p = pht();
        let _ = p.key(&[]);
    }

    #[test]
    fn lookup_returns_what_was_learned_for_many_events() {
        // Deterministic sweep standing in for the previous proptest case.
        let mut state = 0x1234_5678u64;
        for trigger in (0..64usize).step_by(5) {
            for second in (0..64usize).step_by(7) {
                let mut p = PatternHistoryTable::new(256, 4, 64);
                let bits: std::collections::BTreeSet<usize> = (0..16)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        ((state >> 24) % 64) as usize
                    })
                    .collect();
                let fp = Footprint::from_offsets(64, bits.iter().copied());
                p.learn(&[trigger, second], fp.clone());
                assert_eq!(p.lookup(&[trigger, second]), Some(fp));
            }
        }
    }

    #[test]
    fn distinct_events_do_not_alias() {
        for (a, b) in [
            ((3usize, 9usize), (9usize, 3usize)),
            ((0, 1), (1, 0)),
            ((5, 5), (5, 6)),
            ((63, 0), (0, 63)),
        ] {
            assert_ne!(a, b);
            let mut p = PatternHistoryTable::new(4096, 64, 64);
            p.learn(&[a.0, a.1], Footprint::from_offsets(64, [1]));
            p.learn(&[b.0, b.1], Footprint::from_offsets(64, [2]));
            assert_eq!(
                p.lookup(&[a.0, a.1])
                    .unwrap()
                    .iter_set()
                    .collect::<Vec<_>>(),
                vec![1]
            );
            assert_eq!(
                p.lookup(&[b.0, b.1])
                    .unwrap()
                    .iter_set()
                    .collect::<Vec<_>>(),
                vec![2]
            );
        }
    }
}
