//! Gaze configuration and its ablation variants.

/// How Gaze characterizes a newly activated region before searching the
/// pattern history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Characterization {
    /// Use only the trigger offset (the `Offset` scheme of Fig. 1 / Fig. 9).
    /// Prefetching is awakened on the first access to a region.
    TriggerOnly,
    /// Use the first `k` accessed offsets, spatially and temporally aligned
    /// (Fig. 4). `k = 2` is the paper's Gaze design: trigger offset as index,
    /// second offset as tag, awakened on the second access.
    FirstAccesses(usize),
}

impl Characterization {
    /// Number of distinct accesses required before prefetching is awakened.
    pub fn accesses_required(self) -> usize {
        match self {
            Characterization::TriggerOnly => 1,
            Characterization::FirstAccesses(k) => k,
        }
    }
}

/// Which prediction paths are enabled (used by the Fig. 9 / Fig. 10
/// ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GazePaths {
    /// Use the Pattern History Table for non-streaming patterns.
    pub pht: bool,
    /// Use the dedicated streaming module (DPCT + Dense Counter) for
    /// streaming regions (trigger = 0, second = 1).
    pub streaming_module: bool,
    /// When the streaming module is disabled, let the PHT also learn and
    /// predict streaming regions (the `PHT4SS` configuration of Fig. 10).
    pub pht_handles_streaming: bool,
    /// Enable the region-based stride backup / stage-2 aggressiveness
    /// promotion in the Accumulation Table.
    pub stride_backup: bool,
    /// Restrict operation to streaming regions only (trigger = 0,
    /// second = 1) — used by the `PHT4SS` / `SM4SS` settings of Fig. 10.
    pub streaming_regions_only: bool,
}

impl Default for GazePaths {
    fn default() -> Self {
        GazePaths {
            pht: true,
            streaming_module: true,
            pht_handles_streaming: false,
            stride_backup: true,
            streaming_regions_only: false,
        }
    }
}

/// Full configuration of the Gaze prefetcher (Table I defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GazeConfig {
    /// Spatial-region size in bytes (4 KB by default).
    pub region_size: u64,
    /// Cache-block size in bytes.
    pub block_size: u64,
    /// Filter Table entries (64) and ways (8).
    pub ft_entries: usize,
    /// Filter Table associativity.
    pub ft_ways: usize,
    /// Accumulation Table entries (64) and ways (8).
    pub at_entries: usize,
    /// Accumulation Table associativity.
    pub at_ways: usize,
    /// Pattern History Table entries (256) and ways (4).
    pub pht_entries: usize,
    /// Pattern History Table associativity.
    pub pht_ways: usize,
    /// Dense-PC Table entries (8, fully associative).
    pub dpct_entries: usize,
    /// Dense Counter width in bits (3).
    pub dc_bits: u32,
    /// Prefetch Buffer entries (32) and ways (8).
    pub pb_entries: usize,
    /// Prefetch Buffer associativity.
    pub pb_ways: usize,
    /// Prefetches drained from the Prefetch Buffer per cycle.
    pub pb_drain_per_cycle: usize,
    /// Number of leading blocks promoted to the L1D for a confident
    /// streaming region (16 = one quarter of a 4 KB region).
    pub dense_l1_blocks: usize,
    /// Blocks skipped before the stage-2 stride promotion window.
    pub stride_skip: usize,
    /// Blocks promoted to the L1D by one stage-2 stride promotion.
    pub stride_promote: usize,
    /// Pattern characterization scheme.
    pub characterization: Characterization,
    /// Enabled prediction paths.
    pub paths: GazePaths,
}

impl GazeConfig {
    /// The paper's default configuration (§III-E, Table I).
    pub fn paper_default() -> Self {
        GazeConfig {
            region_size: 4096,
            block_size: 64,
            ft_entries: 64,
            ft_ways: 8,
            at_entries: 64,
            at_ways: 8,
            pht_entries: 256,
            pht_ways: 4,
            dpct_entries: 8,
            dc_bits: 3,
            pb_entries: 32,
            pb_ways: 8,
            pb_drain_per_cycle: 4,
            dense_l1_blocks: 16,
            stride_skip: 2,
            stride_promote: 4,
            characterization: Characterization::FirstAccesses(2),
            paths: GazePaths::default(),
        }
    }

    /// The `Offset` characterization baseline of Fig. 1 / Fig. 9: trigger
    /// offset only, no streaming module, no stride backup.
    pub fn offset_only() -> Self {
        GazeConfig {
            characterization: Characterization::TriggerOnly,
            paths: GazePaths {
                pht: true,
                streaming_module: false,
                pht_handles_streaming: true,
                stride_backup: false,
                streaming_regions_only: false,
            },
            ..Self::paper_default()
        }
    }

    /// `Gaze-PHT` of Fig. 9: the two-access characterization without the
    /// dedicated streaming module (dense regions go through the PHT).
    pub fn gaze_pht_only() -> Self {
        GazeConfig {
            paths: GazePaths {
                pht: true,
                streaming_module: false,
                pht_handles_streaming: true,
                stride_backup: false,
                streaming_regions_only: false,
            },
            ..Self::paper_default()
        }
    }

    /// `PHT4SS` of Fig. 10: only streaming regions are handled, naively via
    /// the PHT.
    pub fn pht_for_streaming_only() -> Self {
        GazeConfig {
            paths: GazePaths {
                pht: true,
                streaming_module: false,
                pht_handles_streaming: true,
                stride_backup: false,
                streaming_regions_only: true,
            },
            ..Self::paper_default()
        }
    }

    /// `SM4SS` of Fig. 10: only streaming regions are handled, via the
    /// dedicated streaming module.
    pub fn streaming_module_only() -> Self {
        GazeConfig {
            paths: GazePaths {
                pht: false,
                streaming_module: true,
                pht_handles_streaming: false,
                stride_backup: true,
                streaming_regions_only: true,
            },
            ..Self::paper_default()
        }
    }

    /// The Fig. 4 sweep: require the first `k` accesses (1–4) to be aligned.
    pub fn with_initial_accesses(mut self, k: usize) -> Self {
        assert!(
            (1..=4).contains(&k),
            "the paper evaluates 1..=4 initial accesses"
        );
        self.characterization = if k == 1 {
            Characterization::TriggerOnly
        } else {
            Characterization::FirstAccesses(k)
        };
        self
    }

    /// The Fig. 17 / Fig. 18 sweeps: change the spatial-region size.
    pub fn with_region_size(mut self, bytes: u64) -> Self {
        assert!(
            bytes.is_power_of_two() && bytes >= 2 * self.block_size,
            "invalid region size"
        );
        self.region_size = bytes;
        self
    }

    /// The Fig. 17b sweep: change the PHT capacity.
    pub fn with_pht_entries(mut self, entries: usize) -> Self {
        assert!(
            entries >= self.pht_ways && entries.is_multiple_of(self.pht_ways),
            "PHT entries must be a multiple of ways"
        );
        self.pht_entries = entries;
        self
    }

    /// Blocks per region for this configuration.
    pub fn blocks_per_region(&self) -> usize {
        (self.region_size / self.block_size) as usize
    }

    /// Width in bits of a block offset within a region.
    pub fn offset_bits(&self) -> u32 {
        (self.blocks_per_region() as u64).trailing_zeros()
    }

    /// Storage requirement of each structure and the total, in bits,
    /// following the Table I accounting (36-bit region tags, 12-bit hashed
    /// PCs, 3-bit LRU for 8-way structures, 2-bit LRU for the 4-way PHT).
    pub fn storage_breakdown_bits(&self) -> StorageBreakdown {
        let offset_bits = u64::from(self.offset_bits());
        let blocks = self.blocks_per_region() as u64;
        let ft = self.ft_entries as u64 * (36 + 3 + 12 + offset_bits);
        let at = self.at_entries as u64 * (36 + 3 + 12 + 1 + 4 * offset_bits + blocks);
        let pht = self.pht_entries as u64 * (offset_bits + 2 + blocks);
        let dpct = self.dpct_entries as u64 * (12 + 3);
        let pb = self.pb_entries as u64 * (36 + 3 + 2 * blocks);
        let dc = u64::from(self.dc_bits);
        StorageBreakdown {
            ft,
            at,
            pht,
            dpct,
            pb,
            dc,
        }
    }
}

impl Default for GazeConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Per-structure storage cost in bits (Table I reproduction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageBreakdown {
    /// Filter Table bits.
    pub ft: u64,
    /// Accumulation Table bits.
    pub at: u64,
    /// Pattern History Table bits.
    pub pht: u64,
    /// Dense-PC Table bits.
    pub dpct: u64,
    /// Prefetch Buffer bits.
    pub pb: u64,
    /// Dense Counter bits.
    pub dc: u64,
}

impl StorageBreakdown {
    /// Total bits.
    pub fn total_bits(&self) -> u64 {
        self.ft + self.at + self.pht + self.dpct + self.pb + self.dc
    }

    /// Total kilobytes (1 KB = 1024 B).
    pub fn total_kib(&self) -> f64 {
        self.total_bits() as f64 / 8.0 / 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_i_sizes() {
        let cfg = GazeConfig::paper_default();
        assert_eq!(cfg.blocks_per_region(), 64);
        assert_eq!(cfg.offset_bits(), 6);
        let s = cfg.storage_breakdown_bits();
        // Table I: FT 456B, AT 1128B, PHT 2304B, DPCT 15B, PB 668B, ~4.46KB.
        assert_eq!(s.ft / 8, 456);
        assert_eq!(s.at / 8, 1120); // Table I reports 1128 B (8 B of rounding in the paper)
        assert_eq!(s.pht / 8, 2304);
        assert_eq!(s.dpct / 8, 15);
        assert_eq!(s.pb / 8, 668);
        let kib = s.total_kib();
        assert!(
            (kib - 4.46).abs() < 0.05,
            "total storage {kib:.2} KB should be about 4.46 KB"
        );
    }

    #[test]
    fn characterization_access_requirements() {
        assert_eq!(Characterization::TriggerOnly.accesses_required(), 1);
        assert_eq!(Characterization::FirstAccesses(2).accesses_required(), 2);
        assert_eq!(
            GazeConfig::paper_default()
                .with_initial_accesses(1)
                .characterization
                .accesses_required(),
            1
        );
        assert_eq!(
            GazeConfig::paper_default()
                .with_initial_accesses(4)
                .characterization
                .accesses_required(),
            4
        );
    }

    #[test]
    fn variant_constructors_disable_expected_paths() {
        assert!(!GazeConfig::offset_only().paths.streaming_module);
        assert!(!GazeConfig::gaze_pht_only().paths.streaming_module);
        assert!(GazeConfig::gaze_pht_only().paths.pht_handles_streaming);
        assert!(
            GazeConfig::pht_for_streaming_only()
                .paths
                .streaming_regions_only
        );
        assert!(
            GazeConfig::streaming_module_only()
                .paths
                .streaming_regions_only
        );
        assert!(!GazeConfig::streaming_module_only().paths.pht);
    }

    #[test]
    fn region_size_sweep_changes_geometry() {
        let small = GazeConfig::paper_default().with_region_size(512);
        assert_eq!(small.blocks_per_region(), 8);
        let huge = GazeConfig::paper_default().with_region_size(64 * 1024);
        assert_eq!(huge.blocks_per_region(), 1024);
        assert!(
            huge.storage_breakdown_bits().total_bits()
                > small.storage_breakdown_bits().total_bits()
        );
    }

    #[test]
    #[should_panic(expected = "1..=4")]
    fn initial_accesses_out_of_range_rejected() {
        let _ = GazeConfig::paper_default().with_initial_accesses(5);
    }

    #[test]
    fn pht_sweep_scales_storage() {
        let small = GazeConfig::paper_default().with_pht_entries(128);
        let large = GazeConfig::paper_default().with_pht_entries(1024);
        assert!(large.storage_breakdown_bits().pht == 8 * small.storage_breakdown_bits().pht);
    }
}
