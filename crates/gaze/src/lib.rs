//! Gaze: a spatial prefetcher that characterizes spatial patterns with
//! footprint-internal temporal correlations (HPCA 2025).
//!
//! Conventional spatial-pattern prefetchers look for a previously seen region
//! whose *environmental context* (trigger PC, address, offset) matches the
//! newly activated one. Gaze instead matches on the pattern's own first two
//! accesses — their spatial positions **and their order** — which
//! characterizes the access behaviour itself at a fraction of the metadata
//! cost (≈4.46 KB). A dedicated two-stage aggressiveness control handles the
//! extremely dense footprints produced by spatial streaming.
//!
//! The crate exposes:
//!
//! * [`Gaze`] — the prefetcher, implementing
//!   [`prefetch_common::Prefetcher`],
//! * [`GazeConfig`] — the paper's configuration plus every ablation variant
//!   used in the evaluation (`Offset`, `Gaze-PHT`, `PHT4SS`, `SM4SS`, vGaze
//!   region-size sweeps, first-*k*-accesses characterization),
//! * the individual hardware structures ([`tables`], [`pht`], [`dense`],
//!   [`prefetch_buffer`]) for unit-level study.
//!
//! # Example
//!
//! ```
//! use gaze::{Gaze, GazeConfig};
//! use prefetch_common::access::DemandAccess;
//! use prefetch_common::prefetcher::Prefetcher;
//! use prefetch_common::sink::RequestSink;
//!
//! let mut gaze = Gaze::with_config(GazeConfig::paper_default());
//! let mut sink = RequestSink::new();
//! // Train on a region accessed at offsets 5, 9, 13 ...
//! for offset in [5u64, 9, 13] {
//!     gaze.on_access(&DemandAccess::load(0x400123, 0x1000 + offset * 64), false, &mut sink);
//! }
//! assert_eq!(gaze.storage_bits() / 8 / 1024, 4); // ~4.46 KB of metadata
//! ```

pub mod config;
pub mod dense;
pub mod pht;
pub mod prefetch_buffer;
pub mod prefetcher;
pub mod tables;

pub use config::{Characterization, GazeConfig, GazePaths, StorageBreakdown};
pub use dense::{StreamConfidence, StreamingModule};
pub use pht::PatternHistoryTable;
pub use prefetch_buffer::{OffsetState, PrefetchBuffer, PrefetchPattern};
pub use prefetcher::Gaze;
pub use tables::{AccumEntry, AccumulationTable, FilterEntry, FilterTable};
