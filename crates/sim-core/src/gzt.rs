//! GZT — the packed on-disk trace format and its streaming reader.
//!
//! A GZT file is a compact little-endian encoding of one pass over a
//! workload trace: a fixed 32-byte header, the UTF-8 workload name, then
//! one fixed-width 24-byte record per memory instruction. The full
//! specification (every field, offset and invariant) lives in
//! `docs/TRACES.md`; this module is the reference implementation.
//!
//! Layout summary:
//!
//! ```text
//! offset  size  field
//! 0       4     magic, b"GZT1"
//! 4       2     version (u16 LE) = 1
//! 6       2     name_len (u16 LE)
//! 8       8     record_count (u64 LE)
//! 16      8     instructions_per_pass (u64 LE)
//! 24      8     reserved, must be zero
//! 32      n     workload name (name_len UTF-8 bytes)
//! 32+n    24*k  records
//! ```
//!
//! Each record is `pc (u64 LE) | addr (u64 LE) | non_mem_before (u32 LE) |
//! flags (u32 LE)` with flag bit 0 = store and all other bits reserved
//! (must be zero).
//!
//! [`GztWriter`] streams records to disk without buffering the pass;
//! [`GztTrace`] implements [`TraceSource`] by handing out [`GztReader`]s
//! that decode through a bounded chunk buffer, so simulating a packed trace
//! never materialises the full record stream in memory. Everything uses
//! plain `std` file I/O — no mmap, no compression, no external crates.

use std::fs::File;
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

use prefetch_common::addr::Addr;

use crate::trace::{streamed_fingerprint, TraceReader, TraceRecord, TraceSource};

/// Magic bytes at the start of every GZT file.
pub const GZT_MAGIC: [u8; 4] = *b"GZT1";

/// Current (and only) format version.
pub const GZT_VERSION: u16 = 1;

/// Size of the fixed header part, before the workload name.
pub const GZT_HEADER_BYTES: usize = 32;

/// Size of one encoded trace record.
pub const GZT_RECORD_BYTES: usize = 24;

/// Record flag bit 0: the access is a store.
pub const GZT_FLAG_STORE: u32 = 1;

/// Default chunk size of the streaming reader, in records (96 KiB of
/// encoded data — small enough that thousands of concurrent readers stay
/// cheap, large enough that refills are rare).
pub const DEFAULT_CHUNK_RECORDS: usize = 4096;

/// Encodes one record into its 24-byte on-disk form.
pub fn encode_record(rec: &TraceRecord) -> [u8; GZT_RECORD_BYTES] {
    let mut buf = [0u8; GZT_RECORD_BYTES];
    buf[0..8].copy_from_slice(&rec.pc.to_le_bytes());
    buf[8..16].copy_from_slice(&rec.addr.raw().to_le_bytes());
    buf[16..20].copy_from_slice(&rec.non_mem_before.to_le_bytes());
    let flags: u32 = if rec.is_store { GZT_FLAG_STORE } else { 0 };
    buf[20..24].copy_from_slice(&flags.to_le_bytes());
    buf
}

/// Decodes one 24-byte on-disk record.
///
/// Fails if any reserved flag bit is set (a sign the file is not GZT v1 or
/// is corrupt).
pub fn decode_record(buf: &[u8; GZT_RECORD_BYTES]) -> io::Result<TraceRecord> {
    let pc = u64::from_le_bytes(buf[0..8].try_into().expect("8-byte slice"));
    let addr = u64::from_le_bytes(buf[8..16].try_into().expect("8-byte slice"));
    let non_mem_before = u32::from_le_bytes(buf[16..20].try_into().expect("4-byte slice"));
    let flags = u32::from_le_bytes(buf[20..24].try_into().expect("4-byte slice"));
    if flags & !GZT_FLAG_STORE != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("reserved GZT record flag bits set: {flags:#x}"),
        ));
    }
    Ok(TraceRecord {
        pc,
        addr: Addr::new(addr),
        is_store: flags & GZT_FLAG_STORE != 0,
        non_mem_before,
    })
}

/// Reads `buf.len()` bytes at `offset` without moving any file cursor
/// (`pread` on Unix; an emulation via the shared-handle cursor elsewhere,
/// where each `GztReader` owns its handle so the cursor is private).
#[cfg(unix)]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    std::os::unix::fs::FileExt::read_exact_at(file, buf, offset)
}

#[cfg(not(unix))]
fn read_exact_at(mut file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    file.seek(SeekFrom::Start(offset))?;
    file.read_exact(buf)
}

/// Streaming GZT writer: records go straight to disk; the header's counts
/// are patched in when the writer is [`finish`](GztWriter::finish)ed.
///
/// The writer never holds more than one record in memory, so arbitrarily
/// long traces can be packed with a bounded footprint.
pub struct GztWriter {
    out: BufWriter<File>,
    record_count: u64,
    instructions: u64,
}

impl GztWriter {
    /// Creates `path` (truncating any existing file) and writes the header
    /// for a trace called `name`.
    ///
    /// Fails if `name` is empty or longer than `u16::MAX` bytes.
    pub fn create(path: &Path, name: &str) -> io::Result<GztWriter> {
        if name.is_empty() || name.len() > usize::from(u16::MAX) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "GZT trace name must be 1..=65535 bytes",
            ));
        }
        let mut out = BufWriter::new(File::create(path)?);
        let mut header = [0u8; GZT_HEADER_BYTES];
        header[0..4].copy_from_slice(&GZT_MAGIC);
        header[4..6].copy_from_slice(&GZT_VERSION.to_le_bytes());
        header[6..8].copy_from_slice(&(name.len() as u16).to_le_bytes());
        // record_count and instructions_per_pass are patched by finish().
        out.write_all(&header)?;
        out.write_all(name.as_bytes())?;
        Ok(GztWriter {
            out,
            record_count: 0,
            instructions: 0,
        })
    }

    /// Appends one record.
    pub fn push(&mut self, rec: &TraceRecord) -> io::Result<()> {
        self.out.write_all(&encode_record(rec))?;
        self.record_count += 1;
        self.instructions += rec.instruction_count();
        Ok(())
    }

    /// Appends every record of an iterator.
    pub fn push_all<'a>(
        &mut self,
        records: impl IntoIterator<Item = &'a TraceRecord>,
    ) -> io::Result<()> {
        for rec in records {
            self.push(rec)?;
        }
        Ok(())
    }

    /// Number of records written so far.
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    /// Patches the header counts, flushes, and closes the file.
    ///
    /// Fails if no record was written: an empty trace cannot drive the
    /// simulator, so the format forbids it.
    pub fn finish(mut self) -> io::Result<()> {
        if self.record_count == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a GZT trace must contain at least one record",
            ));
        }
        self.out.flush()?;
        let mut file = self.out.into_inner().map_err(io::Error::from)?;
        file.seek(SeekFrom::Start(8))?;
        file.write_all(&self.record_count.to_le_bytes())?;
        file.write_all(&self.instructions.to_le_bytes())?;
        file.sync_all()
    }
}

/// Writes a complete in-memory record slice as a GZT file (convenience
/// wrapper over [`GztWriter`]).
pub fn write_gzt(path: &Path, name: &str, records: &[TraceRecord]) -> io::Result<()> {
    let mut w = GztWriter::create(path, name)?;
    w.push_all(records)?;
    w.finish()
}

/// A packed trace file acting as a [`TraceSource`].
///
/// Opening validates the header and the file size; reading is done by
/// [`GztReader`]s, each with its own file handle and bounded chunk buffer,
/// so one `GztTrace` can be shared read-only across worker threads.
#[derive(Debug, Clone)]
pub struct GztTrace {
    path: PathBuf,
    name: String,
    record_count: u64,
    instructions_per_pass: u64,
    data_offset: u64,
    chunk_records: usize,
    /// Memoized stream fingerprint — the file is validated-immutable after
    /// open, and the baseline cache asks for the fingerprint once per
    /// simulation, which would otherwise re-read the whole file each time.
    /// Shared across clones so the file is fingerprinted at most once.
    fingerprint: Arc<OnceLock<u64>>,
}

impl GztTrace {
    /// Opens and validates a GZT file.
    ///
    /// Fails if the magic/version mismatch, the header is inconsistent, the
    /// name is not UTF-8, the record count is zero, or the file size does
    /// not equal `header + name + record_count * 24` exactly.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<GztTrace> {
        let path = path.into();
        let mut file = File::open(&path)?;
        let mut header = [0u8; GZT_HEADER_BYTES];
        file.read_exact(&mut header).map_err(|e| {
            io::Error::new(
                e.kind(),
                format!("{}: truncated GZT header", path.display()),
            )
        })?;
        let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        if header[0..4] != GZT_MAGIC {
            return Err(invalid(format!(
                "{}: not a GZT file (bad magic)",
                path.display()
            )));
        }
        let version = u16::from_le_bytes(header[4..6].try_into().expect("2-byte slice"));
        if version != GZT_VERSION {
            return Err(invalid(format!(
                "{}: unsupported GZT version {version} (expected {GZT_VERSION})",
                path.display()
            )));
        }
        let name_len = u16::from_le_bytes(header[6..8].try_into().expect("2-byte slice"));
        let record_count = u64::from_le_bytes(header[8..16].try_into().expect("8-byte slice"));
        let instructions_per_pass =
            u64::from_le_bytes(header[16..24].try_into().expect("8-byte slice"));
        if header[24..32] != [0u8; 8] {
            return Err(invalid(format!(
                "{}: reserved GZT header bytes are non-zero",
                path.display()
            )));
        }
        if record_count == 0 {
            return Err(invalid(format!(
                "{}: GZT trace has zero records (unfinished pack?)",
                path.display()
            )));
        }
        let mut name_bytes = vec![0u8; usize::from(name_len)];
        file.read_exact(&mut name_bytes).map_err(|e| {
            io::Error::new(e.kind(), format!("{}: truncated GZT name", path.display()))
        })?;
        let name = String::from_utf8(name_bytes)
            .map_err(|_| invalid(format!("{}: GZT name is not UTF-8", path.display())))?;
        let data_offset = GZT_HEADER_BYTES as u64 + u64::from(name_len);
        let expected_size = data_offset + record_count * GZT_RECORD_BYTES as u64;
        let actual_size = file.metadata()?.len();
        if actual_size != expected_size {
            return Err(invalid(format!(
                "{}: GZT file size {actual_size} does not match header \
                 (expected {expected_size} for {record_count} records)",
                path.display()
            )));
        }
        Ok(GztTrace {
            path,
            name,
            record_count,
            instructions_per_pass,
            data_offset,
            chunk_records: DEFAULT_CHUNK_RECORDS,
            fingerprint: Arc::new(OnceLock::new()),
        })
    }

    /// Returns a copy using `chunk_records` as the reader buffer capacity
    /// (minimum 1). Smaller chunks bound memory tighter at the cost of more
    /// refills; tests use tiny chunks to prove the bound.
    pub fn with_chunk_records(mut self, chunk_records: usize) -> GztTrace {
        self.chunk_records = chunk_records.max(1);
        self
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of records in one pass.
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    /// Creates a concrete chunked reader (the trait-object path goes through
    /// [`TraceSource::reader`]; this one exposes the buffer bound for
    /// tests and tools).
    pub fn chunk_reader(&self) -> io::Result<GztReader> {
        // Every read is positioned (offset computed from
        // `next_record_index`), so the reader never seeks: many readers
        // can share one opened file without a cursor to race on.
        Ok(GztReader {
            file: File::open(&self.path)?,
            data_offset: self.data_offset,
            record_count: self.record_count,
            chunk: Vec::with_capacity(self.chunk_records),
            chunk_capacity: self.chunk_records,
            raw: vec![0u8; self.chunk_records * GZT_RECORD_BYTES],
            chunk_pos: 0,
            next_record_index: 0,
            wraps: 0,
        })
    }
}

impl TraceSource for GztTrace {
    fn name(&self) -> &str {
        &self.name
    }

    fn len(&self) -> usize {
        self.record_count as usize
    }

    fn instructions_per_pass(&self) -> u64 {
        self.instructions_per_pass
    }

    /// # Panics
    ///
    /// Panics if the underlying file can no longer be opened or read — the
    /// file was validated at [`GztTrace::open`] time, so this only happens
    /// if it was deleted or truncated mid-run.
    fn reader(&self) -> Box<dyn TraceReader + '_> {
        Box::new(
            self.chunk_reader().unwrap_or_else(|e| {
                panic!("GZT trace {} became unreadable: {e}", self.path.display())
            }),
        )
    }

    /// Memoized: the file is read and fingerprinted at most once per
    /// opened trace (shared across clones), instead of on every cache-key
    /// computation.
    fn fingerprint(&self) -> u64 {
        *self
            .fingerprint
            .get_or_init(|| streamed_fingerprint(TraceSource::len(self), &mut *self.reader()))
    }
}

/// A replaying reader over a [`GztTrace`], decoding through a bounded chunk
/// buffer.
///
/// Memory use is `chunk_capacity` decoded records plus the matching raw
/// byte buffer, independent of the trace length.
pub struct GztReader {
    file: File,
    data_offset: u64,
    record_count: u64,
    chunk: Vec<TraceRecord>,
    chunk_capacity: usize,
    raw: Vec<u8>,
    chunk_pos: usize,
    /// Absolute index (within the pass) of the next record to hand out.
    next_record_index: u64,
    wraps: u64,
}

impl GztReader {
    /// The reader's buffer capacity in records — the streaming memory bound.
    pub fn chunk_capacity(&self) -> usize {
        self.chunk_capacity
    }

    /// Number of decoded records currently buffered (always `<=`
    /// [`chunk_capacity`](GztReader::chunk_capacity)).
    pub fn buffered_records(&self) -> usize {
        self.chunk.len()
    }

    fn refill(&mut self) -> io::Result<()> {
        if self.next_record_index >= self.record_count {
            // Pass exhausted: wrap to the start of the data section.
            self.next_record_index = 0;
            self.wraps += 1;
        }
        let remaining = (self.record_count - self.next_record_index) as usize;
        let n = remaining.min(self.chunk_capacity);
        let offset = self.data_offset + self.next_record_index * GZT_RECORD_BYTES as u64;
        let bytes = &mut self.raw[..n * GZT_RECORD_BYTES];
        read_exact_at(&self.file, bytes, offset)?;
        self.chunk.clear();
        for i in 0..n {
            let rec_bytes: &[u8; GZT_RECORD_BYTES] = bytes
                [i * GZT_RECORD_BYTES..(i + 1) * GZT_RECORD_BYTES]
                .try_into()
                .expect("exact record slice");
            self.chunk.push(decode_record(rec_bytes)?);
        }
        self.chunk_pos = 0;
        Ok(())
    }
}

impl TraceReader for GztReader {
    /// # Panics
    ///
    /// Panics if the underlying file turns unreadable mid-pass (deleted or
    /// truncated after validation).
    fn next_record(&mut self) -> TraceRecord {
        if self.chunk_pos >= self.chunk.len() {
            self.refill()
                .unwrap_or_else(|e| panic!("GZT trace became unreadable mid-pass: {e}"));
        }
        let rec = self.chunk[self.chunk_pos];
        self.chunk_pos += 1;
        self.next_record_index += 1;
        rec
    }

    fn wraps(&self) -> u64 {
        self.wraps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{source_fingerprint, Trace};

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("gzt-unit-{}-{tag}.gzt", std::process::id()))
    }

    fn sample_records(n: usize) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    TraceRecord::store(0x400000 + i as u64, (i as u64) * 64, (i % 7) as u32)
                } else {
                    TraceRecord::load(0x400100 + i as u64, (i as u64) * 192 + 8, (i % 11) as u32)
                }
            })
            .collect()
    }

    #[test]
    fn record_encoding_round_trips() {
        for rec in sample_records(50) {
            let decoded = decode_record(&encode_record(&rec)).expect("valid record");
            assert_eq!(decoded, rec);
        }
    }

    #[test]
    fn reserved_flag_bits_are_rejected() {
        let mut buf = encode_record(&TraceRecord::load(1, 64, 0));
        buf[21] = 0x80;
        assert!(decode_record(&buf).is_err());
    }

    #[test]
    fn file_round_trip_preserves_everything() {
        let path = temp_path("roundtrip");
        let records = sample_records(1000);
        write_gzt(&path, "unit-trace", &records).expect("write");
        let gzt = GztTrace::open(&path).expect("open");
        assert_eq!(TraceSource::name(&gzt), "unit-trace");
        assert_eq!(gzt.len(), 1000);
        let mem = Trace::new("unit-trace", records.clone());
        assert_eq!(
            gzt.instructions_per_pass(),
            Trace::instructions_per_pass(&mem)
        );
        let mut r = gzt.reader();
        for rec in &records {
            assert_eq!(r.next_record(), *rec);
        }
        assert_eq!(r.wraps(), 0);
        // Fingerprints agree between disk and memory.
        assert_eq!(source_fingerprint(&gzt), source_fingerprint(&mem));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reader_wraps_like_the_in_memory_cursor() {
        let path = temp_path("wraps");
        let records = sample_records(17);
        write_gzt(&path, "wrap-trace", &records).expect("write");
        let gzt = GztTrace::open(&path).expect("open").with_chunk_records(5);
        let mem = Trace::new("wrap-trace", records);
        let mut a = gzt.reader();
        let mut b = mem.cursor();
        for _ in 0..100 {
            assert_eq!(a.next_record(), b.next_record());
        }
        assert_eq!(a.wraps(), b.wraps());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunk_buffer_stays_bounded_on_traces_larger_than_the_chunk() {
        let path = temp_path("bounded");
        // 50k records (~1.2 MB on disk), streamed through a 256-record
        // buffer: the reader must never hold more than the chunk.
        let records = sample_records(50_000);
        write_gzt(&path, "big-trace", &records).expect("write");
        let gzt = GztTrace::open(&path).expect("open").with_chunk_records(256);
        let mut reader = gzt.chunk_reader().expect("reader");
        assert_eq!(reader.chunk_capacity(), 256);
        for rec in &records {
            assert_eq!(TraceReader::next_record(&mut reader), *rec);
            assert!(
                reader.buffered_records() <= reader.chunk_capacity(),
                "buffer exceeded its bound: {} > {}",
                reader.buffered_records(),
                reader.chunk_capacity()
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_corruption() {
        let path = temp_path("corrupt");
        let records = sample_records(10);
        write_gzt(&path, "t", &records).expect("write");

        // Bad magic.
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).expect("write");
        assert!(GztTrace::open(&path).is_err());

        // Bad version.
        bytes[0] = b'G';
        bytes[4] = 9;
        std::fs::write(&path, &bytes).expect("write");
        assert!(GztTrace::open(&path).is_err());

        // Truncated data section.
        bytes[4] = 1;
        let truncated = bytes.len() - 7;
        std::fs::write(&path, &bytes[..truncated]).expect("write");
        assert!(GztTrace::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn writer_rejects_empty_traces_and_bad_names() {
        let path = temp_path("empty");
        let w = GztWriter::create(&path, "empty").expect("create");
        assert!(w.finish().is_err());
        assert!(GztWriter::create(&path, "").is_err());
        std::fs::remove_file(&path).ok();
    }
}
