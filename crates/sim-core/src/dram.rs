//! A bank-/channel-aware DRAM timing model.
//!
//! The model captures the three effects that matter for prefetcher
//! evaluation: row-buffer locality (open-row hits are much cheaper than row
//! conflicts), per-bank busy time, and finite channel data-bus bandwidth.
//! Useless prefetch traffic therefore delays later demand requests — the
//! mechanism behind the multi-core degradation of over-aggressive prefetchers
//! in Fig. 14.

use prefetch_common::addr::BlockAddr;

use crate::config::DramConfig;

#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: Option<u64>,
    busy_until: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Channel {
    /// Next cycle at which a *demand* transfer can start (demands have
    /// priority at the controller and only queue behind other demands).
    demand_bus_free_at: u64,
    /// Next cycle at which any transfer (including prefetches) can start.
    bus_free_at: u64,
}

/// Running DRAM access counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Total line reads serviced.
    pub reads: u64,
    /// Reads that hit an open row.
    pub row_hits: u64,
    /// Reads that required opening a closed row.
    pub row_misses: u64,
    /// Reads that had to close another row first.
    pub row_conflicts: u64,
}

/// DDR-style DRAM with channels, ranks, banks and open-row policy.
#[derive(Debug, Clone)]
pub struct DramModel {
    config: DramConfig,
    channels: Vec<Channel>,
    banks: Vec<Bank>,
    timing: u64,
    transfer: u64,
    stats: DramStats,
}

impl DramModel {
    /// Creates a DRAM model for `config` with a 64 B line size.
    pub fn new(config: DramConfig) -> Self {
        Self::with_line_size(config, 64)
    }

    /// Creates a DRAM model with an explicit line size in bytes.
    pub fn with_line_size(config: DramConfig, line_size: u64) -> Self {
        let banks = vec![
            Bank {
                open_row: None,
                busy_until: 0
            };
            config.total_banks()
        ];
        let channels = vec![Channel::default(); config.channels];
        let timing = config.timing_cycles();
        let transfer = config.line_transfer_cycles(line_size);
        DramModel {
            config,
            channels,
            banks,
            timing,
            transfer,
            stats: DramStats::default(),
        }
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Access counters.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    fn map(&self, block: BlockAddr) -> (usize, usize, u64) {
        let raw = block.raw();
        let channel = (raw as usize) % self.config.channels;
        let banks_per_channel = self.config.ranks_per_channel * self.config.banks_per_rank;
        let bank_in_channel = ((raw as usize) / self.config.channels) % banks_per_channel;
        let bank = channel * banks_per_channel + bank_in_channel;
        let blocks_per_row = self.config.row_buffer_bytes / 64;
        let row = raw / self.config.channels as u64 / banks_per_channel as u64 / blocks_per_row;
        (channel, bank, row)
    }

    /// Cycles of channel-bus backlog a *prefetch* read may add beyond the
    /// unloaded access latency before the controller refuses it (demand reads
    /// are always accepted). This models a finite controller queue: prefetch
    /// traffic is bounded to what the bus can absorb within this window.
    pub const PREFETCH_BACKLOG_LIMIT: u64 = 600;

    /// Whether a prefetch read for `block` would currently be accepted by the
    /// controller (see [`Self::PREFETCH_BACKLOG_LIMIT`]).
    pub fn accepts_prefetch(&self, block: BlockAddr, now: u64) -> bool {
        let (channel_idx, _, _) = self.map(block);
        let unloaded_completion = now + self.idle_closed_latency();
        self.channels[channel_idx].bus_free_at <= unloaded_completion + Self::PREFETCH_BACKLOG_LIMIT
    }

    /// The earliest arrival cycle at which [`Self::accepts_prefetch`]
    /// holds for `block`, assuming no intervening DRAM traffic. Read-only: used by the simulator's queue-aware cycle
    /// skipping to bound how far the clock may fast-forward while a refused
    /// prefetch waits for the channel backlog to clear.
    pub fn prefetch_accepted_from(&self, block: BlockAddr) -> u64 {
        let (channel_idx, _, _) = self.map(block);
        self.channels[channel_idx]
            .bus_free_at
            .saturating_sub(self.idle_closed_latency() + Self::PREFETCH_BACKLOG_LIMIT)
    }

    /// Services a *demand* line read for `block` arriving at `now`; returns
    /// the cycle at which the data transfer completes. Demand reads have
    /// priority at the controller: they queue only behind other demand
    /// transfers (plus bank timing), never behind pending prefetch transfers.
    pub fn access(&mut self, block: BlockAddr, now: u64) -> u64 {
        self.access_inner(block, now, false)
    }

    /// Services a *prefetch* line read for `block` arriving at `now`.
    /// Prefetch reads queue behind all previously scheduled traffic.
    pub fn access_prefetch(&mut self, block: BlockAddr, now: u64) -> u64 {
        self.access_inner(block, now, true)
    }

    /// Estimates (without booking any resources) when a demand read for
    /// `block` arriving at `now` would complete. Used to promote in-flight
    /// prefetches that a demand merges with: the merged request completes no
    /// later than a freshly issued demand would have.
    pub fn estimate_demand(&self, block: BlockAddr, now: u64) -> u64 {
        let (channel_idx, bank_idx, row) = self.map(block);
        let arrival = now + self.config.controller_overhead_cycles;
        let bank = &self.banks[bank_idx];
        let start = arrival.max(bank.busy_until);
        let array_latency = match bank.open_row {
            Some(open) if open == row => self.timing,
            Some(_) => 3 * self.timing,
            None => 2 * self.timing,
        };
        let data_start = (start + array_latency).max(self.channels[channel_idx].demand_bus_free_at);
        data_start + self.transfer
    }

    fn access_inner(&mut self, block: BlockAddr, now: u64, is_prefetch: bool) -> u64 {
        let (channel_idx, bank_idx, row) = self.map(block);
        self.stats.reads += 1;

        // Controller / interconnect overhead before the command reaches the
        // bank; it does not occupy the bank or the data bus.
        let arrival = now + self.config.controller_overhead_cycles;
        let bank = &mut self.banks[bank_idx];
        let start = arrival.max(bank.busy_until);
        let array_latency = match bank.open_row {
            Some(open) if open == row => {
                self.stats.row_hits += 1;
                self.timing // tCAS
            }
            Some(_) => {
                self.stats.row_conflicts += 1;
                3 * self.timing // tRP + tRCD + tCAS
            }
            None => {
                self.stats.row_misses += 1;
                2 * self.timing // tRCD + tCAS
            }
        };
        bank.open_row = Some(row);

        let channel = &mut self.channels[channel_idx];
        let queue_behind = if is_prefetch {
            channel.bus_free_at
        } else {
            channel.demand_bus_free_at
        };
        let data_start = (start + array_latency).max(queue_behind);
        let done = data_start + self.transfer;
        if !is_prefetch {
            channel.demand_bus_free_at = done;
        }
        channel.bus_free_at = channel.bus_free_at.max(done);
        // The bank is busy for the row activation / column access itself;
        // time spent waiting for the (prioritized) data bus does not keep the
        // bank array occupied, so queued prefetch transfers do not lock later
        // demand reads out of the bank.
        bank.busy_until = start + array_latency;
        done
    }

    /// Minimum possible latency of a single isolated access to an idle,
    /// closed bank (useful for sanity checks and for core-model sizing).
    pub fn idle_closed_latency(&self) -> u64 {
        self.config.controller_overhead_cycles + 2 * self.timing + self.transfer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;

    fn model() -> DramModel {
        DramModel::new(DramConfig::paper_single_channel())
    }

    #[test]
    fn first_access_pays_closed_row_latency() {
        let mut d = model();
        let done = d.access(BlockAddr::new(0), 0);
        assert_eq!(done, d.idle_closed_latency());
        assert_eq!(d.stats().row_misses, 1);
    }

    #[test]
    fn row_hit_is_cheaper_than_conflict() {
        let mut d = model();
        let first = d.access(BlockAddr::new(0), 0);
        // Same row (block 0 and 1 map to the same row on a single channel).
        let hit_done = d.access(BlockAddr::new(1), first);
        let hit_latency = hit_done - first;
        // A block in the same bank but a different row forces a conflict.
        let blocks_per_row = 2048 / 64;
        let far = BlockAddr::new(8 * blocks_per_row * 7);
        let conflict_done = d.access(far, hit_done);
        let conflict_latency = conflict_done - hit_done;
        assert!(
            hit_latency < conflict_latency,
            "row hit {hit_latency} should beat conflict {conflict_latency}"
        );
    }

    #[test]
    fn channel_bus_serializes_transfers() {
        let mut d = model();
        // Two accesses to different banks issued at the same time still share
        // the single channel's data bus.
        let a = d.access(BlockAddr::new(0), 0);
        let b = d.access(BlockAddr::new(1 << 20), 0);
        assert!(b > a, "second transfer must wait for the bus");
        assert!(b >= a + d.config().line_transfer_cycles(64));
    }

    #[test]
    fn more_channels_increase_parallelism() {
        let mut one = DramModel::new(DramConfig::paper_single_channel());
        let mut four = DramModel::new(DramConfig {
            channels: 4,
            ..DramConfig::paper_single_channel()
        });
        // Issue 16 concurrent accesses to consecutive blocks at cycle 0 and
        // compare the completion time of the last one.
        let last_one = (0..16)
            .map(|i| one.access(BlockAddr::new(i), 0))
            .max()
            .unwrap();
        let last_four = (0..16)
            .map(|i| four.access(BlockAddr::new(i), 0))
            .max()
            .unwrap();
        assert!(
            last_four < last_one,
            "4-channel DRAM should finish earlier ({last_four} vs {last_one})"
        );
    }

    #[test]
    fn higher_mtps_reduces_transfer_time() {
        let slow = DramConfig {
            mtps: 800,
            ..DramConfig::paper_single_channel()
        };
        let fast = DramConfig {
            mtps: 12800,
            ..DramConfig::paper_single_channel()
        };
        assert!(
            DramModel::new(fast).idle_closed_latency() < DramModel::new(slow).idle_closed_latency()
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut d = model();
        for i in 0..10 {
            d.access(BlockAddr::new(i), i * 1000);
        }
        let s = d.stats();
        assert_eq!(s.reads, 10);
        assert_eq!(s.row_hits + s.row_misses + s.row_conflicts, 10);
    }
}
