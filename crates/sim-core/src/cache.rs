//! Set-associative cache arrays with prefetch metadata.

use prefetch_common::addr::BlockAddr;

use crate::config::CacheConfig;

/// Outcome of installing a line into a cache set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// The block that was evicted.
    pub block: BlockAddr,
    /// Whether the victim line had been brought in by a prefetch.
    pub was_prefetch: bool,
    /// Whether a prefetched victim had been referenced by a demand access.
    pub was_used: bool,
    /// Whether the victim was dirty.
    pub was_dirty: bool,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    block: BlockAddr,
    valid: bool,
    lru: u64,
    prefetched: bool,
    used: bool,
    dirty: bool,
    /// Core that caused the fill (for shared-cache stat attribution).
    owner: usize,
}

impl Line {
    fn invalid() -> Self {
        Line {
            block: BlockAddr::new(0),
            valid: false,
            lru: 0,
            prefetched: false,
            used: false,
            dirty: false,
            owner: 0,
        }
    }
}

/// A set-associative cache array with LRU replacement and per-line prefetch
/// metadata (prefetched / used / dirty bits plus the owning core).
///
/// The array only models *contents*; timing (latencies, MSHRs, bandwidth) is
/// handled by the memory hierarchy.
#[derive(Debug, Clone)]
pub struct CacheArray {
    sets: usize,
    ways: usize,
    lines: Vec<Line>,
    tick: u64,
}

/// Result of a demand lookup that hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HitInfo {
    /// The hit was on a prefetched line that had not been used before
    /// (i.e. this demand is the first use of the prefetch).
    pub first_use_of_prefetch: bool,
    /// Core that filled the line.
    pub owner: usize,
}

impl CacheArray {
    /// Creates an empty cache with the geometry of `config`.
    pub fn new(config: &CacheConfig) -> Self {
        let sets = config.sets();
        let ways = config.ways;
        CacheArray {
            sets,
            ways,
            lines: vec![Line::invalid(); sets * ways],
            tick: 0,
        }
    }

    /// Creates a cache with an explicit set/way shape (used for the shared
    /// LLC whose capacity scales with the core count).
    pub fn with_shape(sets: usize, ways: usize) -> Self {
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "sets must be a power of two"
        );
        assert!(ways > 0, "ways must be non-zero");
        CacheArray {
            sets,
            ways,
            lines: vec![Line::invalid(); sets * ways],
            tick: 0,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    fn set_of(&self, block: BlockAddr) -> usize {
        (block.raw() as usize) & (self.sets - 1)
    }

    fn set_slice(&mut self, set: usize) -> &mut [Line] {
        &mut self.lines[set * self.ways..(set + 1) * self.ways]
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Whether `block` is present.
    pub fn contains(&self, block: BlockAddr) -> bool {
        let set = self.set_of(block);
        self.lines[set * self.ways..(set + 1) * self.ways]
            .iter()
            .any(|l| l.valid && l.block == block)
    }

    /// Performs a demand access to `block`. On a hit, updates LRU, marks the
    /// line used and (for stores) dirty, and reports whether this was the
    /// first demand use of a prefetched line. Returns `None` on a miss.
    pub fn demand_access(&mut self, block: BlockAddr, is_store: bool) -> Option<HitInfo> {
        let tick = self.next_tick();
        let set = self.set_of(block);
        let line = self
            .set_slice(set)
            .iter_mut()
            .find(|l| l.valid && l.block == block)?;
        line.lru = tick;
        if is_store {
            line.dirty = true;
        }
        let first_use = line.prefetched && !line.used;
        line.used = true;
        Some(HitInfo {
            first_use_of_prefetch: first_use,
            owner: line.owner,
        })
    }

    /// Touches `block` for LRU purposes without changing prefetch metadata
    /// (used when an upper level writes back into this level).
    pub fn touch(&mut self, block: BlockAddr) {
        let tick = self.next_tick();
        let set = self.set_of(block);
        if let Some(line) = self
            .set_slice(set)
            .iter_mut()
            .find(|l| l.valid && l.block == block)
        {
            line.lru = tick;
        }
    }

    /// Installs `block`, evicting the LRU victim if the set is full.
    ///
    /// `prefetched` marks the line as brought in by a prefetch; `owner` is the
    /// requesting core. If the block is already present the existing line is
    /// refreshed instead (a prefetch fill of a present line does not clear its
    /// used bit).
    pub fn fill(&mut self, block: BlockAddr, prefetched: bool, owner: usize) -> Option<Eviction> {
        let tick = self.next_tick();
        let ways = self.ways;
        let set = self.set_of(block);
        let slice = self.set_slice(set);
        if let Some(line) = slice.iter_mut().find(|l| l.valid && l.block == block) {
            line.lru = tick;
            return None;
        }
        // Prefer an invalid way.
        if let Some(line) = slice.iter_mut().find(|l| !l.valid) {
            *line = Line {
                block,
                valid: true,
                lru: tick,
                prefetched,
                used: false,
                dirty: false,
                owner,
            };
            return None;
        }
        let victim_idx = (0..ways)
            .min_by_key(|&i| slice[i].lru)
            .expect("full set has a victim");
        let victim = slice[victim_idx];
        slice[victim_idx] = Line {
            block,
            valid: true,
            lru: tick,
            prefetched,
            used: false,
            dirty: false,
            owner,
        };
        Some(Eviction {
            block: victim.block,
            was_prefetch: victim.prefetched,
            was_used: victim.used,
            was_dirty: victim.dirty,
        })
    }

    /// Invalidates `block` if present, returning its eviction record.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<Eviction> {
        let set = self.set_of(block);
        let line = self
            .set_slice(set)
            .iter_mut()
            .find(|l| l.valid && l.block == block)?;
        let ev = Eviction {
            block: line.block,
            was_prefetch: line.prefetched,
            was_used: line.used,
            was_dirty: line.dirty,
        };
        line.valid = false;
        Some(ev)
    }

    /// Iterates over all valid lines, reporting `(block, prefetched, used)`.
    /// Used at end of simulation to account for still-resident unused
    /// prefetches.
    pub fn resident_lines(&self) -> impl Iterator<Item = (BlockAddr, bool, bool, usize)> + '_ {
        self.lines
            .iter()
            .filter(|l| l.valid)
            .map(|l| (l.block, l.prefetched, l.used, l.owner))
    }

    /// Number of valid lines.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheArray {
        // 4 sets x 2 ways.
        CacheArray::with_shape(4, 2)
    }

    #[test]
    fn fill_then_hit() {
        let mut c = tiny();
        let b = BlockAddr::new(5);
        assert!(!c.contains(b));
        assert!(c.fill(b, false, 0).is_none());
        assert!(c.contains(b));
        let hit = c.demand_access(b, false).unwrap();
        assert!(!hit.first_use_of_prefetch);
    }

    #[test]
    fn prefetch_first_use_reported_once() {
        let mut c = tiny();
        let b = BlockAddr::new(9);
        c.fill(b, true, 0);
        assert!(c.demand_access(b, false).unwrap().first_use_of_prefetch);
        assert!(!c.demand_access(b, false).unwrap().first_use_of_prefetch);
    }

    #[test]
    fn lru_eviction_prefers_least_recent() {
        let mut c = CacheArray::with_shape(1, 2);
        let (a, b, d) = (BlockAddr::new(1), BlockAddr::new(2), BlockAddr::new(3));
        c.fill(a, false, 0);
        c.fill(b, false, 0);
        c.demand_access(a, false); // b becomes LRU
        let ev = c.fill(d, true, 0).unwrap();
        assert_eq!(ev.block, b);
        assert!(!ev.was_prefetch);
    }

    #[test]
    fn eviction_reports_unused_prefetch() {
        let mut c = CacheArray::with_shape(1, 1);
        c.fill(BlockAddr::new(1), true, 3);
        let ev = c.fill(BlockAddr::new(2), false, 0).unwrap();
        assert!(ev.was_prefetch);
        assert!(!ev.was_used);
    }

    #[test]
    fn store_marks_dirty() {
        let mut c = CacheArray::with_shape(1, 1);
        c.fill(BlockAddr::new(1), false, 0);
        c.demand_access(BlockAddr::new(1), true);
        let ev = c.fill(BlockAddr::new(2), false, 0).unwrap();
        assert!(ev.was_dirty);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        let b = BlockAddr::new(8);
        c.fill(b, false, 0);
        assert!(c.invalidate(b).is_some());
        assert!(!c.contains(b));
        assert!(c.invalidate(b).is_none());
    }

    #[test]
    fn refill_of_present_block_does_not_evict() {
        let mut c = CacheArray::with_shape(1, 1);
        c.fill(BlockAddr::new(1), false, 0);
        assert!(c.fill(BlockAddr::new(1), true, 0).is_none());
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn config_based_construction() {
        let c = CacheArray::new(&crate::config::CacheConfig::paper_l1d());
        assert_eq!(c.sets(), 64);
        assert_eq!(c.ways(), 12);
    }

    /// Deterministic pseudo-random block stream (stands in for proptest,
    /// which is unavailable in the offline build environment).
    fn block_stream(seed: u64, modulus: u64) -> impl Iterator<Item = u64> {
        let mut state = seed | 1;
        std::iter::from_fn(move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            Some((state >> 24) % modulus)
        })
    }

    #[test]
    fn occupancy_never_exceeds_capacity_under_random_fills() {
        for seed in 1..=8u64 {
            let mut c = CacheArray::with_shape(8, 4);
            for b in block_stream(seed, 256).take(300) {
                c.fill(BlockAddr::new(b), b % 3 == 0, 0);
                assert!(c.occupancy() <= 32);
            }
        }
    }

    #[test]
    fn most_recent_fill_is_always_resident() {
        for seed in 1..=8u64 {
            let mut c = CacheArray::with_shape(4, 2);
            for b in block_stream(seed, 1024).take(200) {
                c.fill(BlockAddr::new(b), false, 0);
                assert!(c.contains(BlockAddr::new(b)));
            }
        }
    }
}
