//! A simplified out-of-order core model.
//!
//! The model captures what matters for prefetcher evaluation: a finite
//! reorder buffer and load queue bound how much memory-level parallelism the
//! core can expose, dispatch is `width`-wide, and instructions retire in
//! order, so a long-latency load at the ROB head stalls the pipeline until
//! its data returns. Non-memory instructions execute in a single cycle;
//! stores commit without stalling the core (their cache effects are applied
//! by the system).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::config::CoreConfig;

#[derive(Debug, Clone, Copy)]
struct RobEntry {
    ready_at: u64,
}

/// Retire/dispatch bookkeeping for one core.
#[derive(Debug, Clone)]
pub struct CoreModel {
    cfg: CoreConfig,
    rob: VecDeque<RobEntry>,
    retired: u64,
    /// Completion times of dispatched loads whose data has not yet been
    /// observed to return. Replaces an O(ROB) scan per dispatch slot with an
    /// amortized O(log LQ) heap: a load with `ready_at > now` cannot have
    /// retired, so the popped view is exactly the in-flight load count.
    load_completions: BinaryHeap<Reverse<u64>>,
}

impl CoreModel {
    /// Creates an idle core.
    pub fn new(cfg: CoreConfig) -> Self {
        CoreModel {
            cfg,
            rob: VecDeque::with_capacity(cfg.rob_entries),
            retired: 0,
            load_completions: BinaryHeap::new(),
        }
    }

    /// The core configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Instructions retired since construction (or the last
    /// [`reset_retired`](Self::reset_retired)).
    pub fn retired_instructions(&self) -> u64 {
        self.retired
    }

    /// Resets the retired-instruction counter (used at the warm-up boundary).
    pub fn reset_retired(&mut self) {
        self.retired = 0;
    }

    /// Whether the reorder buffer has room for another instruction.
    pub fn can_dispatch(&self) -> bool {
        self.rob.len() < self.cfg.rob_entries
    }

    fn drain_completed_loads(&mut self, now: u64) {
        while let Some(&Reverse(ready)) = self.load_completions.peek() {
            if ready > now {
                break;
            }
            self.load_completions.pop();
        }
    }

    /// Number of loads currently in the ROB whose data has not yet returned.
    pub fn loads_in_flight(&mut self, now: u64) -> usize {
        self.drain_completed_loads(now);
        self.load_completions.len()
    }

    /// Whether another load can be dispatched this cycle (load-queue bound).
    pub fn can_dispatch_load(&mut self, now: u64) -> bool {
        self.can_dispatch() && self.loads_in_flight(now) < self.cfg.load_queue
    }

    /// Dispatches a single-cycle (non-memory or store) instruction.
    ///
    /// # Panics
    ///
    /// Panics if the ROB is full; callers must check
    /// [`can_dispatch`](Self::can_dispatch).
    pub fn dispatch_simple(&mut self, now: u64) {
        assert!(self.can_dispatch(), "dispatch into a full ROB");
        self.rob.push_back(RobEntry { ready_at: now + 1 });
    }

    /// Dispatches a load whose data becomes available at `ready_at`.
    ///
    /// # Panics
    ///
    /// Panics if the ROB is full.
    pub fn dispatch_load(&mut self, ready_at: u64) {
        assert!(self.can_dispatch(), "dispatch into a full ROB");
        self.rob.push_back(RobEntry { ready_at });
        self.load_completions.push(Reverse(ready_at));
    }

    /// Retires up to `width` completed instructions from the ROB head and
    /// returns how many retired this cycle.
    pub fn retire(&mut self, now: u64) -> u64 {
        let mut count = 0;
        while count < self.cfg.width as u64 {
            match self.rob.front() {
                Some(entry) if entry.ready_at <= now => {
                    self.rob.pop_front();
                    count += 1;
                }
                _ => break,
            }
        }
        self.retired += count;
        count
    }

    /// Current ROB occupancy.
    pub fn rob_occupancy(&self) -> usize {
        self.rob.len()
    }

    /// The earliest cycle strictly after `now` at which this core's state can
    /// change without new input: the completion time of the nearest
    /// still-outstanding instruction. `None` when every ROB entry is already
    /// complete (or the ROB is empty) — the core is not waiting on time.
    ///
    /// Used by the system's event-driven cycle skipping to fast-forward over
    /// stall cycles.
    pub fn next_event_at(&self, now: u64) -> Option<u64> {
        self.rob
            .iter()
            .map(|e| e.ready_at)
            .filter(|&r| r > now)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> CoreModel {
        CoreModel::new(CoreConfig::paper_default())
    }

    #[test]
    fn simple_instructions_retire_next_cycle() {
        let mut c = core();
        c.dispatch_simple(0);
        assert_eq!(c.retire(0), 0);
        assert_eq!(c.retire(1), 1);
        assert_eq!(c.retired_instructions(), 1);
    }

    #[test]
    fn retire_width_is_bounded() {
        let mut c = core();
        for _ in 0..10 {
            c.dispatch_simple(0);
        }
        assert_eq!(c.retire(5), 4);
        assert_eq!(c.retire(5), 4);
        assert_eq!(c.retire(5), 2);
    }

    #[test]
    fn long_latency_load_blocks_retirement() {
        let mut c = core();
        c.dispatch_load(100);
        c.dispatch_simple(0);
        // The younger instruction is ready but cannot retire past the load.
        assert_eq!(c.retire(50), 0);
        assert_eq!(c.retire(100), 2);
    }

    #[test]
    fn rob_capacity_enforced() {
        let mut c = CoreModel::new(CoreConfig {
            rob_entries: 4,
            ..CoreConfig::paper_default()
        });
        for _ in 0..4 {
            assert!(c.can_dispatch());
            c.dispatch_load(1000);
        }
        assert!(!c.can_dispatch());
    }

    #[test]
    fn load_queue_limits_outstanding_loads() {
        let mut c = CoreModel::new(CoreConfig {
            load_queue: 2,
            ..CoreConfig::paper_default()
        });
        c.dispatch_load(1000);
        c.dispatch_load(1000);
        assert!(!c.can_dispatch_load(0));
        // Once the loads complete they no longer occupy the load queue.
        assert!(c.can_dispatch_load(1000));
    }

    #[test]
    fn reset_retired_clears_counter_only() {
        let mut c = core();
        c.dispatch_simple(0);
        c.retire(1);
        c.reset_retired();
        assert_eq!(c.retired_instructions(), 0);
        assert_eq!(c.rob_occupancy(), 0);
    }

    #[test]
    #[should_panic(expected = "full ROB")]
    fn dispatch_into_full_rob_panics() {
        let mut c = CoreModel::new(CoreConfig {
            rob_entries: 1,
            ..CoreConfig::paper_default()
        });
        c.dispatch_simple(0);
        c.dispatch_simple(0);
    }
}
