#![deny(missing_docs)]

//! A trace-driven, cycle-approximate CPU memory-system simulator for
//! evaluating hardware prefetchers.
//!
//! This crate is the reproduction's stand-in for ChampSim, the simulator used
//! by the Gaze paper (HPCA 2025). It models:
//!
//! * an out-of-order core with a finite ROB, load queue and dispatch width
//!   ([`core`]),
//! * a three-level cache hierarchy (private L1D/L2C, shared LLC) with MSHRs,
//!   prefetch fill levels and per-line usefulness tracking ([`cache`],
//!   [`hierarchy`]),
//! * a banked, channel-limited DRAM with open-row policy ([`dram`]),
//! * multi-core execution with shared-resource contention ([`system`]),
//! * run parameters with scale presets and the stable fingerprints that key
//!   caches and the persistent results store ([`params`]),
//! * the metrics reported in the paper: IPC/speedup, overall prefetch
//!   accuracy, LLC coverage and late-prefetch fraction ([`stats`]),
//! * the [`TraceSource`] abstraction over in-memory and streamed on-disk
//!   traces, with the packed GZT file format ([`trace`], [`gzt`] — spec in
//!   `docs/TRACES.md`).
//!
//! # Example
//!
//! ```
//! use prefetch_common::prefetcher::NullPrefetcher;
//! use sim_core::config::SimConfig;
//! use sim_core::system::System;
//! use sim_core::trace::{Trace, TraceRecord};
//!
//! let records: Vec<_> = (0..500)
//!     .map(|i| TraceRecord::load(0x400000, 0x10000 + i * 64, 3))
//!     .collect();
//! let trace = Trace::new("stream", records);
//! let mut system = System::single_core(
//!     SimConfig::paper_single_core(),
//!     &trace,
//!     Box::new(NullPrefetcher::new()),
//! );
//! let report = system.run(500, 2_000);
//! assert!(report.cores[0].ipc() > 0.0);
//! ```

pub mod cache;
pub mod config;
pub mod core;
pub mod dram;
pub mod gzt;
pub mod hierarchy;
pub mod params;
pub mod stats;
pub mod system;
pub mod trace;

pub use config::{CacheConfig, CoreConfig, DramConfig, SimConfig};
pub use gzt::{GztReader, GztTrace, GztWriter};
pub use hierarchy::{HitLevel, MemoryHierarchy, PrefetchOutcome};
pub use params::{records_for, RunParams};
pub use stats::{geometric_mean, CacheStats, CoreStats, PrefetchStats, SimReport};
pub use system::System;
pub use trace::{source_fingerprint, Trace, TraceCursor, TraceReader, TraceRecord, TraceSource};
