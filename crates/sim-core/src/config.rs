//! Simulator configuration mirroring Table II of the paper.

use crate::params::Fnv1a;

/// Configuration of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Cache-line size in bytes.
    pub line_size: u64,
    /// Associativity (ways).
    pub ways: usize,
    /// Access (hit) latency in core cycles.
    pub latency: u64,
    /// Number of miss-status holding registers.
    pub mshrs: usize,
}

impl CacheConfig {
    /// Number of sets implied by the size, line size and associativity.
    ///
    /// # Panics
    ///
    /// Panics if the parameters do not describe a valid power-of-two set
    /// count.
    pub fn sets(&self) -> usize {
        let sets = (self.size_bytes / self.line_size) as usize / self.ways;
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "cache sets must be a power of two, got {sets}"
        );
        sets
    }

    fn fingerprint_into(&self, h: &mut Fnv1a) {
        h.mix(self.size_bytes);
        h.mix(self.line_size);
        h.mix(self.ways as u64);
        h.mix(self.latency);
        h.mix(self.mshrs as u64);
    }

    /// Returns a copy resized to `size_bytes`, minimally growing the
    /// associativity when the implied set count would not be a power of
    /// two — the same trick Table II's 48 KB / 12-way L1D uses: the odd
    /// factor of the block count moves into the ways, keeping the
    /// capacity exact and the set count a power of two. Sizes that
    /// already divide evenly keep their associativity (and therefore
    /// their fingerprint) unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is not a whole number of cache lines (a
    /// fractional size would silently realize less capacity than the
    /// fingerprint hashes) or holds fewer blocks than the current
    /// associativity.
    pub fn resized(mut self, size_bytes: u64) -> Self {
        self.size_bytes = size_bytes;
        assert!(
            size_bytes.is_multiple_of(self.line_size),
            "cache size {size_bytes} is not a whole number of {}-byte lines",
            self.line_size
        );
        let blocks = (size_bytes / self.line_size) as usize;
        assert!(
            blocks >= self.ways,
            "cache of {size_bytes} bytes holds fewer than {} blocks",
            self.ways
        );
        if blocks.is_multiple_of(self.ways) && (blocks / self.ways).is_power_of_two() {
            return self;
        }
        let odd = blocks >> blocks.trailing_zeros();
        let mut ways = odd;
        while ways < self.ways {
            ways *= 2;
        }
        self.ways = ways;
        self
    }

    /// Paper L1D: 48 KB, 12-way, 5-cycle, 16 MSHRs.
    pub fn paper_l1d() -> Self {
        CacheConfig {
            size_bytes: 48 * 1024,
            line_size: 64,
            ways: 12,
            latency: 5,
            mshrs: 16,
        }
    }

    /// Paper L2C: 512 KB, 8-way, 10-cycle, 32 MSHRs.
    pub fn paper_l2c() -> Self {
        CacheConfig {
            size_bytes: 512 * 1024,
            line_size: 64,
            ways: 8,
            latency: 10,
            mshrs: 32,
        }
    }

    /// Paper LLC: 2 MB per core, 16-way, 20-cycle, 64 MSHRs.
    pub fn paper_llc_per_core() -> Self {
        CacheConfig {
            size_bytes: 2 * 1024 * 1024,
            line_size: 64,
            ways: 16,
            latency: 20,
            mshrs: 64,
        }
    }
}

/// DRAM configuration (DDR4-like, Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Number of channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks_per_channel: usize,
    /// Banks per rank.
    pub banks_per_rank: usize,
    /// Transfer rate in mega-transfers per second.
    pub mtps: u64,
    /// Data-bus width in bits.
    pub bus_width_bits: u64,
    /// Row-buffer size per bank in bytes.
    pub row_buffer_bytes: u64,
    /// tRP = tRCD = tCAS in nanoseconds (12.5 ns in the paper).
    pub trp_trcd_tcas_ns: f64,
    /// Core clock frequency in GHz (4 GHz in the paper), used to convert
    /// DRAM timings to core cycles.
    pub core_ghz: f64,
    /// Fixed memory-controller / on-chip-interconnect overhead per request,
    /// in core cycles. This captures the request/response network and
    /// controller queuing outside the DRAM array itself so that total
    /// off-chip latency lands in the 250–350 cycle range ChampSim reports.
    pub controller_overhead_cycles: u64,
}

impl DramConfig {
    fn fingerprint_into(&self, h: &mut Fnv1a) {
        h.mix(self.channels as u64);
        h.mix(self.ranks_per_channel as u64);
        h.mix(self.banks_per_rank as u64);
        h.mix(self.mtps);
        h.mix(self.bus_width_bits);
        h.mix(self.row_buffer_bytes);
        h.mix_f64(self.trp_trcd_tcas_ns);
        h.mix_f64(self.core_ghz);
        h.mix(self.controller_overhead_cycles);
    }

    /// Single-channel configuration used for 1-core runs ("1C" in Table II).
    pub fn paper_single_channel() -> Self {
        DramConfig {
            channels: 1,
            ranks_per_channel: 1,
            banks_per_rank: 8,
            mtps: 3200,
            bus_width_bits: 64,
            row_buffer_bytes: 2048,
            trp_trcd_tcas_ns: 12.5,
            core_ghz: 4.0,
            controller_overhead_cycles: 130,
        }
    }

    /// Channel/rank scaling per core count, as in Table II: 1C: 1ch×1rk,
    /// 2C: 2ch×1rk, 4C: 2ch×2rk, 8C: 4ch×2rk.
    pub fn paper_for_cores(cores: usize) -> Self {
        let mut cfg = Self::paper_single_channel();
        match cores {
            0 | 1 => {}
            2 => cfg.channels = 2,
            3 | 4 => {
                cfg.channels = 2;
                cfg.ranks_per_channel = 2;
            }
            _ => {
                cfg.channels = 4;
                cfg.ranks_per_channel = 2;
            }
        }
        cfg
    }

    /// tRP/tRCD/tCAS in core cycles.
    pub fn timing_cycles(&self) -> u64 {
        (self.trp_trcd_tcas_ns * self.core_ghz).round() as u64
    }

    /// Core cycles the channel data bus is occupied transferring one line.
    pub fn line_transfer_cycles(&self, line_size: u64) -> u64 {
        let bytes_per_transfer = self.bus_width_bits / 8;
        let transfers = line_size.div_ceil(bytes_per_transfer);
        // One transfer every 1/MTPS microseconds; core runs at core_ghz GHz.
        let cycles_per_transfer = self.core_ghz * 1000.0 / self.mtps as f64;
        (transfers as f64 * cycles_per_transfer).ceil() as u64
    }

    /// Total banks across all channels and ranks.
    pub fn total_banks(&self) -> usize {
        self.channels * self.ranks_per_channel * self.banks_per_rank
    }
}

/// Out-of-order core configuration (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Fetch/dispatch/retire width.
    pub width: usize,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Load-queue entries.
    pub load_queue: usize,
    /// Store-queue entries.
    pub store_queue: usize,
}

impl CoreConfig {
    fn fingerprint_into(&self, h: &mut Fnv1a) {
        h.mix(self.width as u64);
        h.mix(self.rob_entries as u64);
        h.mix(self.load_queue as u64);
        h.mix(self.store_queue as u64);
    }

    /// Paper core: 4-wide OoO, 352-entry ROB, 128/72-entry LQ/SQ.
    pub fn paper_default() -> Self {
        CoreConfig {
            width: 4,
            rob_entries: 352,
            load_queue: 128,
            store_queue: 72,
        }
    }
}

/// Complete system configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Number of cores.
    pub cores: usize,
    /// Core microarchitecture.
    pub core: CoreConfig,
    /// Per-core L1 data cache.
    pub l1d: CacheConfig,
    /// Per-core L2 cache.
    pub l2c: CacheConfig,
    /// Shared last-level cache capacity *per core* (total = per-core × cores).
    pub llc_per_core: CacheConfig,
    /// DRAM subsystem.
    pub dram: DramConfig,
    /// Prefetch-queue entries per core.
    pub prefetch_queue: usize,
    /// Maximum prefetches issued from the queue per cycle.
    pub prefetch_issue_width: usize,
}

impl SimConfig {
    /// The paper's single-core configuration (Table II).
    pub fn paper_single_core() -> Self {
        SimConfig {
            cores: 1,
            core: CoreConfig::paper_default(),
            l1d: CacheConfig::paper_l1d(),
            l2c: CacheConfig::paper_l2c(),
            llc_per_core: CacheConfig::paper_llc_per_core(),
            dram: DramConfig::paper_single_channel(),
            // The prefetch queue stands in for the region-granular prefetch
            // buffers every evaluated spatial prefetcher provisions (32
            // regions x 64 blocks), so it is sized in blocks accordingly.
            prefetch_queue: 256,
            prefetch_issue_width: 4,
        }
    }

    /// The paper's configuration for `cores` cores (scales LLC and DRAM
    /// channels/ranks as in Table II).
    pub fn paper_multi_core(cores: usize) -> Self {
        assert!(
            (1..=16).contains(&cores),
            "supported core counts are 1..=16"
        );
        let mut cfg = Self::paper_single_core();
        cfg.cores = cores;
        cfg.dram = DramConfig::paper_for_cores(cores);
        cfg
    }

    /// Returns a copy with a different LLC capacity per core, in megabytes
    /// (Fig. 16b sweep). Fractional sizes (0.5 MB) are supported.
    pub fn with_llc_mb_per_core(mut self, mb: f64) -> Self {
        self.llc_per_core = self.llc_per_core.resized((mb * 1024.0 * 1024.0) as u64);
        self
    }

    /// Returns a copy with a different L2 capacity per core, in kilobytes
    /// (Fig. 16c sweep). Sizes whose block count is not
    /// associativity × power-of-two (the paper's 1536 KB point) get a
    /// minimally larger associativity via [`CacheConfig::resized`].
    pub fn with_l2_kb(mut self, kb: u64) -> Self {
        self.l2c = self.l2c.resized(kb * 1024);
        self
    }

    /// Returns a copy with a different DRAM transfer rate in MT/s
    /// (Fig. 16a sweep).
    pub fn with_dram_mtps(mut self, mtps: u64) -> Self {
        self.dram.mtps = mtps;
        self
    }

    /// Folds every configuration field into an FNV-1a hash (see
    /// [`RunParams::fingerprint`](crate::params::RunParams::fingerprint),
    /// which keys the baseline memoization and the persistent results
    /// store on it).
    pub fn fingerprint_into(&self, h: &mut Fnv1a) {
        h.mix(self.cores as u64);
        self.core.fingerprint_into(h);
        self.l1d.fingerprint_into(h);
        self.l2c.fingerprint_into(h);
        self.llc_per_core.fingerprint_into(h);
        self.dram.fingerprint_into(h);
        h.mix(self.prefetch_queue as u64);
        h.mix(self.prefetch_issue_width as u64);
    }

    /// Stable FNV-1a fingerprint of the full configuration.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        self.fingerprint_into(&mut h);
        h.finish()
    }

    /// Total LLC capacity across all cores.
    pub fn llc_total(&self) -> CacheConfig {
        let mut llc = self.llc_per_core;
        llc.size_bytes *= self.cores as u64;
        // Keep associativity fixed and grow the set count with capacity.
        llc
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::paper_single_core()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l1d_matches_table_ii() {
        let l1d = CacheConfig::paper_l1d();
        assert_eq!(l1d.size_bytes, 48 * 1024);
        assert_eq!(l1d.ways, 12);
        assert_eq!(l1d.latency, 5);
        assert_eq!(l1d.mshrs, 16);
        assert_eq!(l1d.sets(), 64);
    }

    #[test]
    fn paper_l2_and_llc_set_counts() {
        assert_eq!(CacheConfig::paper_l2c().sets(), 1024);
        assert_eq!(CacheConfig::paper_llc_per_core().sets(), 2048);
    }

    #[test]
    fn dram_timing_conversion() {
        let d = DramConfig::paper_single_channel();
        assert_eq!(d.timing_cycles(), 50); // 12.5ns at 4GHz
        assert_eq!(d.line_transfer_cycles(64), 10); // 8 transfers * 1.25 cycles
        assert_eq!(d.total_banks(), 8);
    }

    #[test]
    fn dram_scales_with_core_count() {
        assert_eq!(DramConfig::paper_for_cores(1).channels, 1);
        assert_eq!(DramConfig::paper_for_cores(2).channels, 2);
        let four = DramConfig::paper_for_cores(4);
        assert_eq!((four.channels, four.ranks_per_channel), (2, 2));
        let eight = DramConfig::paper_for_cores(8);
        assert_eq!((eight.channels, eight.ranks_per_channel), (4, 2));
    }

    #[test]
    fn config_sweep_helpers() {
        let cfg = SimConfig::paper_single_core()
            .with_llc_mb_per_core(0.5)
            .with_l2_kb(128)
            .with_dram_mtps(800);
        assert_eq!(cfg.llc_per_core.size_bytes, 512 * 1024);
        assert_eq!(cfg.l2c.size_bytes, 128 * 1024);
        assert_eq!(cfg.dram.mtps, 800);
    }

    #[test]
    fn resizing_keeps_sets_a_power_of_two() {
        // Power-of-two friendly sizes keep the paper's 8 ways.
        for kb in [128u64, 256, 512, 1024] {
            let l2 = SimConfig::paper_single_core().with_l2_kb(kb).l2c;
            assert_eq!(l2.ways, 8, "{kb}KB");
            assert!(l2.sets().is_power_of_two());
        }
        // The paper's 1536 KB point (Fig. 16c) has 3×2^13 blocks: the odd
        // factor moves into the associativity (8 -> 12), like the 48 KB /
        // 12-way L1D.
        let l2 = SimConfig::paper_single_core().with_l2_kb(1536).l2c;
        assert_eq!(l2.size_bytes, 1536 * 1024);
        assert_eq!(l2.ways, 12);
        assert_eq!(l2.sets(), 2048);
        // Every Fig. 16 sweep point builds a valid geometry.
        for mb in [0.5f64, 1.0, 2.0, 4.0, 8.0] {
            let llc = SimConfig::paper_single_core()
                .with_llc_mb_per_core(mb)
                .llc_per_core;
            assert!(llc.sets().is_power_of_two());
        }
    }

    #[test]
    fn llc_total_scales_with_cores() {
        let cfg = SimConfig::paper_multi_core(8);
        assert_eq!(cfg.llc_total().size_bytes, 16 * 1024 * 1024);
        assert_eq!(cfg.dram.channels, 4);
    }
}
