//! Simulation statistics and the metrics reported in the paper.

/// Demand-access statistics for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand loads/stores that looked up this cache.
    pub demand_accesses: u64,
    /// Demand accesses that hit.
    pub demand_hits: u64,
    /// Demand accesses that missed.
    pub demand_misses: u64,
    /// Prefetch fills installed into this cache.
    pub prefetch_fills: u64,
    /// Prefetched lines later referenced by a demand access.
    pub useful_prefetches: u64,
    /// Prefetched lines evicted (or left at end of simulation) unreferenced.
    pub useless_prefetches: u64,
}

impl CacheStats {
    /// Demand miss ratio in `[0, 1]`; zero when there were no accesses.
    pub fn miss_ratio(&self) -> f64 {
        if self.demand_accesses == 0 {
            0.0
        } else {
            self.demand_misses as f64 / self.demand_accesses as f64
        }
    }

    /// Misses per kilo-instruction given the retired instruction count.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.demand_misses as f64 * 1000.0 / instructions as f64
        }
    }
}

/// Prefetch-side statistics for one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Requests emitted by the prefetcher.
    pub requested: u64,
    /// Requests actually issued to the memory hierarchy.
    pub issued: u64,
    /// Requests dropped because the block was already cached at (or above)
    /// the requested fill level.
    pub dropped_redundant: u64,
    /// Requests dropped because the prefetch queue was full.
    pub dropped_queue_full: u64,
    /// Requests dropped because no MSHR was available.
    pub dropped_mshr_full: u64,
    /// Demand accesses that hit an in-flight prefetch (late prefetches).
    pub late: u64,
}

/// Per-core simulation results.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CoreStats {
    /// Instructions retired during the measured phase.
    pub instructions: u64,
    /// Cycles elapsed while retiring them.
    pub cycles: u64,
    /// L1 data cache statistics.
    pub l1d: CacheStats,
    /// L2 cache statistics.
    pub l2c: CacheStats,
    /// This core's share of LLC statistics.
    pub llc: CacheStats,
    /// Prefetching statistics.
    pub prefetch: PrefetchStats,
}

impl CoreStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Overall prefetch accuracy as defined in §IV-A3 of the paper:
    /// `(useful_L1 + useful_L2) / (useful_L1 + useless_L1 + useful_L2 + useless_L2)`.
    ///
    /// Prefetches filled into the LLC are not issued by any evaluated
    /// prefetcher but are included for completeness.
    pub fn overall_accuracy(&self) -> f64 {
        let useful =
            self.l1d.useful_prefetches + self.l2c.useful_prefetches + self.llc.useful_prefetches;
        let useless =
            self.l1d.useless_prefetches + self.l2c.useless_prefetches + self.llc.useless_prefetches;
        if useful + useless == 0 {
            0.0
        } else {
            useful as f64 / (useful + useless) as f64
        }
    }

    /// LLC miss coverage: the fraction of would-be off-chip demand misses
    /// served by prefetching, estimated as
    /// `useful_offchip_prefetches / (useful_offchip_prefetches + llc_demand_misses)`.
    pub fn llc_coverage(&self) -> f64 {
        let covered =
            self.llc.useful_prefetches + self.l2c.useful_prefetches + self.l1d.useful_prefetches;
        // Only count prefetches that actually removed an off-chip miss: those
        // are the ones the hierarchy recorded as useful at any level, since
        // every prefetch fill in this simulator is satisfied from DRAM or LLC.
        let remaining = self.llc.demand_misses;
        if covered + remaining == 0 {
            0.0
        } else {
            covered as f64 / (covered + remaining) as f64
        }
    }

    /// Fraction of useful prefetches that arrived late (demand hit the
    /// in-flight request rather than the filled block).
    pub fn late_fraction(&self) -> f64 {
        let useful = self.l1d.useful_prefetches
            + self.l2c.useful_prefetches
            + self.llc.useful_prefetches
            + self.prefetch.late;
        if useful == 0 {
            0.0
        } else {
            self.prefetch.late as f64 / useful as f64
        }
    }
}

/// Results of one simulation run (all cores).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimReport {
    /// Per-core statistics, indexed by core id.
    pub cores: Vec<CoreStats>,
}

impl SimReport {
    /// Per-core IPCs.
    pub fn ipcs(&self) -> Vec<f64> {
        self.cores.iter().map(CoreStats::ipc).collect()
    }

    /// Arithmetic-mean IPC across cores.
    pub fn mean_ipc(&self) -> f64 {
        if self.cores.is_empty() {
            0.0
        } else {
            self.ipcs().iter().sum::<f64>() / self.cores.len() as f64
        }
    }

    /// Geometric-mean per-core speedup of this report over `baseline`
    /// (the metric used for multi-core comparisons in the paper).
    pub fn speedup_over(&self, baseline: &SimReport) -> f64 {
        assert_eq!(
            self.cores.len(),
            baseline.cores.len(),
            "core-count mismatch in speedup comparison"
        );
        let mut log_sum = 0.0;
        let mut n = 0usize;
        for (a, b) in self.cores.iter().zip(&baseline.cores) {
            let (ia, ib) = (a.ipc(), b.ipc());
            if ia > 0.0 && ib > 0.0 {
                log_sum += (ia / ib).ln();
                n += 1;
            }
        }
        if n == 0 {
            1.0
        } else {
            (log_sum / n as f64).exp()
        }
    }
}

/// Geometric mean of a slice of positive values; 0 if empty.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().filter(|v| **v > 0.0).map(|v| v.ln()).sum();
    let n = values.iter().filter(|v| **v > 0.0).count();
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_mpki() {
        let mut cs = CoreStats {
            instructions: 1000,
            cycles: 2000,
            ..Default::default()
        };
        cs.l1d.demand_misses = 50;
        assert!((cs.ipc() - 0.5).abs() < 1e-12);
        assert!((cs.l1d.mpki(cs.instructions) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_combines_levels() {
        let mut cs = CoreStats::default();
        cs.l1d.useful_prefetches = 30;
        cs.l1d.useless_prefetches = 10;
        cs.l2c.useful_prefetches = 10;
        cs.l2c.useless_prefetches = 10;
        assert!((cs.overall_accuracy() - 40.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_zero_when_no_prefetches() {
        let cs = CoreStats::default();
        assert_eq!(cs.overall_accuracy(), 0.0);
        assert_eq!(cs.llc_coverage(), 0.0);
        assert_eq!(cs.late_fraction(), 0.0);
    }

    #[test]
    fn coverage_uses_remaining_llc_misses() {
        let mut cs = CoreStats::default();
        cs.l1d.useful_prefetches = 60;
        cs.llc.demand_misses = 40;
        assert!((cs.llc_coverage() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn speedup_is_geometric_mean_of_per_core_ratios() {
        let base = SimReport {
            cores: vec![
                CoreStats {
                    instructions: 100,
                    cycles: 100,
                    ..Default::default()
                },
                CoreStats {
                    instructions: 100,
                    cycles: 200,
                    ..Default::default()
                },
            ],
        };
        let new = SimReport {
            cores: vec![
                CoreStats {
                    instructions: 100,
                    cycles: 50,
                    ..Default::default()
                },
                CoreStats {
                    instructions: 100,
                    cycles: 200,
                    ..Default::default()
                },
            ],
        };
        // Core 0 speeds up 2x, core 1 unchanged: geomean = sqrt(2).
        assert!((new.speedup_over(&base) - 2.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn late_fraction_bounds() {
        let mut cs = CoreStats::default();
        cs.prefetch.late = 10;
        cs.l1d.useful_prefetches = 90;
        assert!((cs.late_fraction() - 0.1).abs() < 1e-12);
    }
}
