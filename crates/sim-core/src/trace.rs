//! Memory-access traces consumed by the trace-driven simulator.
//!
//! A trace is a sequence of [`TraceRecord`]s, each describing one memory
//! instruction (its PC, the byte address it touches, and whether it is a
//! store) together with the number of non-memory instructions that execute
//! before it. This is the same abstraction ChampSim traces provide to the
//! simulator after decoding, minus branch information (the paper's results
//! are driven by the data-memory behaviour; the hashed-perceptron branch
//! predictor is near-perfect on the evaluated traces).
//!
//! Traces reach the simulator through the [`TraceSource`] abstraction: a
//! source describes one pass over a workload and hands out replaying
//! [`TraceReader`]s. Two implementations exist:
//!
//! * [`Trace`] — the whole pass held in memory (synthetic generators),
//! * [`GztTrace`](crate::gzt::GztTrace) — a pass streamed from a packed
//!   on-disk GZT file through a bounded chunk buffer ([`crate::gzt`]).
//!
//! The simulator only ever sees `&dyn TraceSource`, so in-memory and
//! on-disk traces are interchangeable, and because both yield the same
//! record stream the resulting [`SimReport`](crate::stats::SimReport)s are
//! bit-identical.

use prefetch_common::addr::Addr;

/// One memory instruction in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Program counter of the memory instruction.
    pub pc: u64,
    /// Byte address accessed.
    pub addr: Addr,
    /// Whether the access is a store.
    pub is_store: bool,
    /// Number of non-memory instructions that precede this access.
    pub non_mem_before: u32,
}

impl TraceRecord {
    /// A load record preceded by `non_mem_before` non-memory instructions.
    pub fn load(pc: u64, addr: u64, non_mem_before: u32) -> Self {
        TraceRecord {
            pc,
            addr: Addr::new(addr),
            is_store: false,
            non_mem_before,
        }
    }

    /// A store record preceded by `non_mem_before` non-memory instructions.
    pub fn store(pc: u64, addr: u64, non_mem_before: u32) -> Self {
        TraceRecord {
            pc,
            addr: Addr::new(addr),
            is_store: true,
            non_mem_before,
        }
    }

    /// Total instructions this record represents (the memory instruction plus
    /// the non-memory instructions before it).
    pub fn instruction_count(&self) -> u64 {
        1 + self.non_mem_before as u64
    }
}

/// A replaying stream of [`TraceRecord`]s produced by a [`TraceSource`].
///
/// Readers wrap to the beginning of the pass when it is exhausted (the
/// paper replays a trace until the simulation's instruction budget is met),
/// so [`next_record`](TraceReader::next_record) never runs dry.
pub trait TraceReader {
    /// Returns the next record, wrapping to the beginning of the pass when
    /// the trace is exhausted.
    fn next_record(&mut self) -> TraceRecord;

    /// Number of times the reader wrapped past the end of the pass.
    fn wraps(&self) -> u64;
}

/// A workload trace the simulator can replay: a named, finite pass of
/// [`TraceRecord`]s that hands out independent replaying [`TraceReader`]s.
///
/// Sources are `Sync` so one read-only source (typically a packed trace
/// file) can be fanned out across the parallel experiment engine's worker
/// threads, each worker creating its own reader.
pub trait TraceSource: Sync {
    /// The trace's name (workload identifier).
    fn name(&self) -> &str;

    /// Number of records in one pass over the trace.
    fn len(&self) -> usize;

    /// Whether the pass holds no records. Always false for valid sources
    /// (both the in-memory and the on-disk constructors reject empty
    /// traces); provided for API completeness.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total instructions represented by one pass (memory instructions plus
    /// the non-memory gaps before them).
    fn instructions_per_pass(&self) -> u64;

    /// Creates a fresh replaying reader positioned at the start of the pass.
    fn reader(&self) -> Box<dyn TraceReader + '_>;

    /// FNV-1a fingerprint over one full pass of this source's records.
    ///
    /// The fingerprint is a pure function of the record stream, so an
    /// on-disk source packed from an in-memory trace fingerprints
    /// identically to the original — which is what lets the baseline
    /// memoization treat the two as the same workload. The default streams
    /// one pass; sources backed by expensive I/O should memoize
    /// (see [`GztTrace`](crate::gzt::GztTrace)).
    fn fingerprint(&self) -> u64 {
        streamed_fingerprint(self.len(), &mut *self.reader())
    }
}

/// The fingerprint computation shared by every [`TraceSource`]: FNV-1a over
/// `len` followed by each record's fields, in record order.
pub fn streamed_fingerprint(len: usize, reader: &mut dyn TraceReader) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    mix(len as u64);
    for _ in 0..len {
        let r = reader.next_record();
        mix(r.pc);
        mix(r.addr.raw());
        mix(u64::from(r.is_store));
        mix(u64::from(r.non_mem_before));
    }
    h
}

/// Fingerprint of one pass of `source` (see [`TraceSource::fingerprint`]).
pub fn source_fingerprint(source: &dyn TraceSource) -> u64 {
    source.fingerprint()
}

/// An in-memory access trace with replay semantics.
///
/// The paper replays a trace from the start whenever it is exhausted before
/// the simulation reaches its instruction budget; [`TraceCursor`] implements
/// the same behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    name: String,
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Creates a trace from records.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty: the simulator cannot make progress on an
    /// empty trace.
    pub fn new(name: impl Into<String>, records: Vec<TraceRecord>) -> Self {
        assert!(
            !records.is_empty(),
            "a trace must contain at least one record"
        );
        Trace {
            name: name.into(),
            records,
        }
    }

    /// The trace's name (workload identifier).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The records of one pass over the trace.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records in one pass.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Always false (construction rejects empty traces); provided for
    /// API completeness.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total instructions represented by one pass over the trace.
    pub fn instructions_per_pass(&self) -> u64 {
        self.records
            .iter()
            .map(TraceRecord::instruction_count)
            .sum()
    }

    /// Creates a replaying cursor positioned at the start.
    pub fn cursor(&self) -> TraceCursor<'_> {
        TraceCursor {
            trace: self,
            pos: 0,
            wraps: 0,
        }
    }
}

impl TraceSource for Trace {
    fn name(&self) -> &str {
        Trace::name(self)
    }

    fn len(&self) -> usize {
        Trace::len(self)
    }

    fn instructions_per_pass(&self) -> u64 {
        Trace::instructions_per_pass(self)
    }

    fn reader(&self) -> Box<dyn TraceReader + '_> {
        Box::new(self.cursor())
    }
}

/// A position within a [`Trace`] that wraps around at the end.
#[derive(Debug, Clone)]
pub struct TraceCursor<'a> {
    trace: &'a Trace,
    pos: usize,
    wraps: u64,
}

impl<'a> TraceCursor<'a> {
    /// Returns the next record, wrapping to the beginning when the trace is
    /// exhausted.
    pub fn next_record(&mut self) -> TraceRecord {
        let rec = self.trace.records[self.pos];
        self.pos += 1;
        if self.pos == self.trace.records.len() {
            self.pos = 0;
            self.wraps += 1;
        }
        rec
    }

    /// Number of times the cursor wrapped past the end of the trace.
    pub fn wraps(&self) -> u64 {
        self.wraps
    }
}

impl TraceReader for TraceCursor<'_> {
    fn next_record(&mut self) -> TraceRecord {
        TraceCursor::next_record(self)
    }

    fn wraps(&self) -> u64 {
        TraceCursor::wraps(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_trace() -> Trace {
        Trace::new(
            "tiny",
            vec![
                TraceRecord::load(0x400000, 0x1000, 3),
                TraceRecord::store(0x400004, 0x2000, 0),
                TraceRecord::load(0x400008, 0x3000, 7),
            ],
        )
    }

    #[test]
    fn instruction_counting() {
        let t = tiny_trace();
        assert_eq!(t.len(), 3);
        assert_eq!(t.instructions_per_pass(), 13); // 3 memory instructions + gaps of 3, 0 and 7
    }

    #[test]
    fn cursor_wraps_around() {
        let t = tiny_trace();
        let mut c = t.cursor();
        for _ in 0..7 {
            c.next_record();
        }
        assert_eq!(c.wraps(), 2);
        assert_eq!(c.next_record(), t.records()[1]);
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn empty_trace_rejected() {
        let _ = Trace::new("empty", Vec::new());
    }

    #[test]
    fn trace_implements_trace_source() {
        let t = tiny_trace();
        let src: &dyn TraceSource = &t;
        assert_eq!(src.name(), "tiny");
        assert_eq!(src.len(), 3);
        assert_eq!(src.instructions_per_pass(), 13);
        let mut r = src.reader();
        for i in 0..5 {
            assert_eq!(r.next_record(), t.records()[i % 3]);
        }
        assert_eq!(r.wraps(), 1);
    }

    #[test]
    fn fingerprint_depends_on_content() {
        let a = Trace::new("w", vec![TraceRecord::load(1, 64, 0)]);
        let b = Trace::new("w", vec![TraceRecord::load(1, 128, 0)]);
        let c = Trace::new("other-name", vec![TraceRecord::load(1, 64, 0)]);
        assert_ne!(source_fingerprint(&a), source_fingerprint(&b));
        // The fingerprint covers the record stream, not the name.
        assert_eq!(source_fingerprint(&a), source_fingerprint(&c));
    }
}
