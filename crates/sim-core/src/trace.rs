//! Memory-access traces consumed by the trace-driven simulator.
//!
//! A trace is a sequence of [`TraceRecord`]s, each describing one memory
//! instruction (its PC, the byte address it touches, and whether it is a
//! store) together with the number of non-memory instructions that execute
//! before it. This is the same abstraction ChampSim traces provide to the
//! simulator after decoding, minus branch information (the paper's results
//! are driven by the data-memory behaviour; the hashed-perceptron branch
//! predictor is near-perfect on the evaluated traces).

use prefetch_common::addr::Addr;

/// One memory instruction in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Program counter of the memory instruction.
    pub pc: u64,
    /// Byte address accessed.
    pub addr: Addr,
    /// Whether the access is a store.
    pub is_store: bool,
    /// Number of non-memory instructions that precede this access.
    pub non_mem_before: u32,
}

impl TraceRecord {
    /// A load record preceded by `non_mem_before` non-memory instructions.
    pub fn load(pc: u64, addr: u64, non_mem_before: u32) -> Self {
        TraceRecord {
            pc,
            addr: Addr::new(addr),
            is_store: false,
            non_mem_before,
        }
    }

    /// A store record preceded by `non_mem_before` non-memory instructions.
    pub fn store(pc: u64, addr: u64, non_mem_before: u32) -> Self {
        TraceRecord {
            pc,
            addr: Addr::new(addr),
            is_store: true,
            non_mem_before,
        }
    }

    /// Total instructions this record represents (the memory instruction plus
    /// the non-memory instructions before it).
    pub fn instruction_count(&self) -> u64 {
        1 + self.non_mem_before as u64
    }
}

/// An in-memory access trace with replay semantics.
///
/// The paper replays a trace from the start whenever it is exhausted before
/// the simulation reaches its instruction budget; [`TraceCursor`] implements
/// the same behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    name: String,
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Creates a trace from records.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty: the simulator cannot make progress on an
    /// empty trace.
    pub fn new(name: impl Into<String>, records: Vec<TraceRecord>) -> Self {
        assert!(
            !records.is_empty(),
            "a trace must contain at least one record"
        );
        Trace {
            name: name.into(),
            records,
        }
    }

    /// The trace's name (workload identifier).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The records of one pass over the trace.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records in one pass.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Always false (construction rejects empty traces); provided for
    /// API completeness.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total instructions represented by one pass over the trace.
    pub fn instructions_per_pass(&self) -> u64 {
        self.records
            .iter()
            .map(TraceRecord::instruction_count)
            .sum()
    }

    /// Creates a replaying cursor positioned at the start.
    pub fn cursor(&self) -> TraceCursor<'_> {
        TraceCursor {
            trace: self,
            pos: 0,
            wraps: 0,
        }
    }
}

/// A position within a [`Trace`] that wraps around at the end.
#[derive(Debug, Clone)]
pub struct TraceCursor<'a> {
    trace: &'a Trace,
    pos: usize,
    wraps: u64,
}

impl<'a> TraceCursor<'a> {
    /// Returns the next record, wrapping to the beginning when the trace is
    /// exhausted.
    pub fn next_record(&mut self) -> TraceRecord {
        let rec = self.trace.records[self.pos];
        self.pos += 1;
        if self.pos == self.trace.records.len() {
            self.pos = 0;
            self.wraps += 1;
        }
        rec
    }

    /// Number of times the cursor wrapped past the end of the trace.
    pub fn wraps(&self) -> u64 {
        self.wraps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_trace() -> Trace {
        Trace::new(
            "tiny",
            vec![
                TraceRecord::load(0x400000, 0x1000, 3),
                TraceRecord::store(0x400004, 0x2000, 0),
                TraceRecord::load(0x400008, 0x3000, 7),
            ],
        )
    }

    #[test]
    fn instruction_counting() {
        let t = tiny_trace();
        assert_eq!(t.len(), 3);
        assert_eq!(t.instructions_per_pass(), 13); // 3 memory instructions + gaps of 3, 0 and 7
    }

    #[test]
    fn cursor_wraps_around() {
        let t = tiny_trace();
        let mut c = t.cursor();
        for _ in 0..7 {
            c.next_record();
        }
        assert_eq!(c.wraps(), 2);
        assert_eq!(c.next_record(), t.records()[1]);
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn empty_trace_rejected() {
        let _ = Trace::new("empty", Vec::new());
    }
}
