//! The three-level cache hierarchy plus DRAM, with MSHRs, prefetch fills and
//! usefulness accounting.
//!
//! Timing model: a demand access walks the hierarchy at access time and the
//! completion cycle is computed from the levels it traverses plus the DRAM
//! bank/bus model; the corresponding cache *fills* are applied when simulated
//! time reaches the completion cycle, so later accesses observe them exactly
//! when a real machine would. Limited MSHRs delay demand misses and drop
//! prefetches, and every off-chip transfer occupies DRAM bank and channel-bus
//! time, which is how useless prefetch traffic hurts co-running cores.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use prefetch_common::addr::BlockAddr;
use prefetch_common::request::{FillLevel, PrefetchRequest};

use crate::cache::CacheArray;
use crate::config::SimConfig;
use crate::dram::DramModel;
use crate::stats::{CacheStats, PrefetchStats};

/// Which structure ultimately served a demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// Hit in the L1 data cache.
    L1,
    /// Hit in the L2 cache.
    L2,
    /// Hit in the shared LLC.
    Llc,
    /// Served from DRAM.
    Dram,
    /// Merged into an in-flight request (demand or prefetch).
    InFlight,
}

/// Result of a demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DemandResult {
    /// Cycle at which the data is available to the core.
    pub complete_at: u64,
    /// Whether the access hit in the L1D (what the prefetcher is told).
    pub l1_hit: bool,
    /// Where the access was served from.
    pub served_by: HitLevel,
}

/// Outcome of trying to issue a prefetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchOutcome {
    /// The prefetch was sent to the memory system.
    Issued,
    /// The block was already cached at (or above) the requested level, or
    /// already in flight.
    Redundant,
    /// No MSHR was available at the target level.
    MshrFull,
}

/// A block filled into the L1D (reported to the prefetcher).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1FillEvent {
    /// The filled block.
    pub block: BlockAddr,
    /// Whether the fill was triggered by a prefetch.
    pub was_prefetch: bool,
}

#[derive(Debug, Clone, Copy)]
struct Outstanding {
    ready: u64,
    is_prefetch: bool,
    demand_touched: bool,
}

/// Open-addressed map from outstanding block number to its
/// [`Outstanding`] entry: linear probing, Fibonacci hashing, and
/// backward-shift deletion (no tombstones), sized to a power of two and
/// doubled at 7/8 load.
///
/// This sits on the per-access hot path (every demand access and every
/// prefetch issue probes it at least once), where it replaces a
/// `HashMap<u64, Outstanding>`: entries live in one flat slot array, so
/// a probe is one multiply plus a short linear scan with no SipHash and
/// no per-entry indirection. All operations are deterministic, and the
/// only iteration ([`min_ready`](Self::min_ready)) computes an
/// order-independent minimum, so simulations stay bit-exact (guarded by
/// the determinism integration tests).
#[derive(Debug)]
struct OutstandingTable {
    /// Slot keys (block numbers); [`Self::EMPTY`] marks a free slot.
    /// Block numbers are byte addresses shifted right by the line bits,
    /// so the sentinel can never collide with a real key.
    keys: Vec<u64>,
    entries: Vec<Outstanding>,
    mask: usize,
    len: usize,
}

impl OutstandingTable {
    const EMPTY: u64 = u64::MAX;
    const INITIAL_CAPACITY: usize = 64;

    fn new() -> Self {
        OutstandingTable {
            keys: vec![Self::EMPTY; Self::INITIAL_CAPACITY],
            entries: vec![
                Outstanding {
                    ready: 0,
                    is_prefetch: false,
                    demand_touched: false,
                };
                Self::INITIAL_CAPACITY
            ],
            mask: Self::INITIAL_CAPACITY - 1,
            len: 0,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    /// The home slot of a key: Fibonacci hashing spreads consecutive
    /// block numbers across the table, then the high bits select a slot.
    fn home(&self, key: u64) -> usize {
        let hash = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (hash >> (64 - self.mask.count_ones())) as usize & self.mask
    }

    fn find(&self, key: u64) -> Option<usize> {
        let mut i = self.home(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(i);
            }
            if k == Self::EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    fn contains(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    fn get_mut(&mut self, key: u64) -> Option<&mut Outstanding> {
        self.find(key).map(|i| &mut self.entries[i])
    }

    fn insert(&mut self, key: u64, entry: Outstanding) -> Option<Outstanding> {
        debug_assert_ne!(key, Self::EMPTY, "block number collides with sentinel");
        // Grow before the probe so the table never saturates (a full
        // table would loop forever) and stays below 7/8 load.
        if (self.len + 1) * 8 > self.keys.len() * 7 {
            self.grow();
        }
        let mut i = self.home(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(std::mem::replace(&mut self.entries[i], entry));
            }
            if k == Self::EMPTY {
                self.keys[i] = key;
                self.entries[i] = entry;
                self.len += 1;
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    fn remove(&mut self, key: u64) -> Option<Outstanding> {
        let mut i = self.find(key)?;
        let removed = self.entries[i];
        self.len -= 1;
        // Backward-shift deletion: walk the probe chain after the hole
        // and slide every entry whose home slot lies cyclically outside
        // (i, j] back into the hole, keeping lookups tombstone-free.
        let mut j = i;
        loop {
            j = (j + 1) & self.mask;
            let k = self.keys[j];
            if k == Self::EMPTY {
                break;
            }
            let home = self.home(k);
            let in_gap = if i <= j {
                i < home && home <= j
            } else {
                i < home || home <= j
            };
            if !in_gap {
                self.keys[i] = k;
                self.entries[i] = self.entries[j];
                i = j;
            }
        }
        self.keys[i] = Self::EMPTY;
        Some(removed)
    }

    /// The minimum `ready` cycle over all entries (`None` when empty).
    fn min_ready(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let mut min = None;
        for (i, &k) in self.keys.iter().enumerate() {
            if k != Self::EMPTY {
                let ready = self.entries[i].ready;
                min = Some(match min {
                    Some(m) if m <= ready => m,
                    _ => ready,
                });
            }
        }
        min
    }

    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![Self::EMPTY; new_cap]);
        let old_entries = std::mem::replace(
            &mut self.entries,
            vec![
                Outstanding {
                    ready: 0,
                    is_prefetch: false,
                    demand_touched: false,
                };
                new_cap
            ],
        );
        self.mask = new_cap - 1;
        self.len = 0;
        for (key, entry) in old_keys.into_iter().zip(old_entries) {
            if key != Self::EMPTY {
                self.insert(key, entry);
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PendingFill {
    at: u64,
    core: usize,
    block: BlockAddr,
    is_prefetch: bool,
    demand_touched: bool,
    fill_l1: bool,
    fill_l2: bool,
    fill_llc: bool,
    /// For prefetches: the level whose line carries the prefetched/used
    /// metadata (usefulness is accounted at the targeted level only, matching
    /// the paper's accuracy definition).
    target: Option<FillLevel>,
}

/// Per-core statistics kept by the hierarchy.
#[derive(Debug, Clone, Copy, Default)]
pub struct HierarchyStats {
    /// L1D statistics.
    pub l1d: CacheStats,
    /// L2C statistics.
    pub l2c: CacheStats,
    /// LLC statistics (this core's demand stream and prefetch fills).
    pub llc: CacheStats,
    /// Prefetch statistics.
    pub prefetch: PrefetchStats,
}

/// The memory hierarchy shared by all cores: per-core L1D and L2C, a shared
/// LLC and a shared DRAM.
#[derive(Debug)]
pub struct MemoryHierarchy {
    cfg: SimConfig,
    l1d: Vec<CacheArray>,
    l2c: Vec<CacheArray>,
    llc: CacheArray,
    dram: DramModel,
    l1_outstanding: Vec<OutstandingTable>,
    /// Per-core counts of outstanding L1 demands/prefetches, maintained
    /// incrementally (the occupancy checks run on every dispatch slot).
    l1_demand_count: Vec<usize>,
    l1_prefetch_count: Vec<usize>,
    /// In-flight prefetches that target the L2 (or LLC), keyed by block, so a
    /// later demand miss merges with them instead of re-fetching from DRAM.
    l2_pf_inflight: Vec<HashMap<u64, u64>>,
    l2_inflight: Vec<Vec<u64>>,
    llc_inflight: Vec<u64>,
    /// Pending cache fills, keyed by insertion sequence number. The heap
    /// below orders them; the map owns them so in-flight promotion can
    /// mutate an entry (lower its completion time, mark it
    /// demand-touched) without re-sorting anything.
    pending_fills: HashMap<u64, PendingFill>,
    /// Min-heap of (completion cycle, insertion seq) handles into
    /// `pending_fills`. Applying fills pops in (cycle, seq) order, which
    /// is exactly the stable sort-by-completion order the previous
    /// sorted-Vec implementation produced — bit-exact LRU evolution,
    /// without the per-apply sort. Promotion pushes a fresh handle at
    /// the lowered cycle (same seq); the superseded handle becomes
    /// stale and is skipped lazily when it surfaces.
    fill_queue: BinaryHeap<Reverse<(u64, u64)>>,
    /// Monotone insertion counter feeding `fill_queue` tie-breaking.
    fill_seq: u64,
    /// Cached minimum completion cycle over live pending fills
    /// (`u64::MAX` when none): the O(1) early-out of `advance_to` and
    /// the O(1) answer of [`next_fill_at`](Self::next_fill_at). Exact at
    /// all times — pushes and promotions only lower it, and every drain
    /// recomputes it from the heap.
    next_pending_at: u64,
    l1_fill_events: Vec<Vec<L1FillEvent>>,
    l1_evict_events: Vec<Vec<BlockAddr>>,
    stats: Vec<HierarchyStats>,
    stats_enabled: bool,
}

impl MemoryHierarchy {
    /// Builds the hierarchy described by `cfg`.
    pub fn new(cfg: SimConfig) -> Self {
        let cores = cfg.cores;
        let llc_cfg = cfg.llc_total();
        let llc_sets = (llc_cfg.size_bytes / llc_cfg.line_size) as usize / llc_cfg.ways;
        let llc_sets = llc_sets.next_power_of_two().max(1);
        MemoryHierarchy {
            l1d: (0..cores).map(|_| CacheArray::new(&cfg.l1d)).collect(),
            l2c: (0..cores).map(|_| CacheArray::new(&cfg.l2c)).collect(),
            llc: CacheArray::with_shape(llc_sets, llc_cfg.ways),
            dram: DramModel::with_line_size(cfg.dram, cfg.l1d.line_size),
            l1_outstanding: (0..cores).map(|_| OutstandingTable::new()).collect(),
            l1_demand_count: vec![0; cores],
            l1_prefetch_count: vec![0; cores],
            l2_pf_inflight: (0..cores).map(|_| HashMap::new()).collect(),
            l2_inflight: (0..cores).map(|_| Vec::new()).collect(),
            llc_inflight: Vec::new(),
            pending_fills: HashMap::new(),
            fill_queue: BinaryHeap::new(),
            fill_seq: 0,
            next_pending_at: u64::MAX,
            l1_fill_events: (0..cores).map(|_| Vec::new()).collect(),
            l1_evict_events: (0..cores).map(|_| Vec::new()).collect(),
            stats: vec![HierarchyStats::default(); cores],
            stats_enabled: true,
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Enables or disables statistics collection (disabled during warm-up).
    pub fn set_stats_enabled(&mut self, enabled: bool) {
        self.stats_enabled = enabled;
    }

    /// Clears all statistics counters (cache contents are preserved).
    pub fn reset_stats(&mut self) {
        for s in &mut self.stats {
            *s = HierarchyStats::default();
        }
    }

    /// Per-core statistics.
    pub fn stats(&self, core: usize) -> HierarchyStats {
        self.stats[core]
    }

    /// Whether `block` currently resides in core `core`'s L1D.
    pub fn l1_contains(&self, core: usize, block: BlockAddr) -> bool {
        self.l1d[core].contains(block)
    }

    /// Drains L1 fill notifications for `core` (for the prefetcher's
    /// `on_fill` hook).
    pub fn take_l1_fills(&mut self, core: usize) -> Vec<L1FillEvent> {
        std::mem::take(&mut self.l1_fill_events[core])
    }

    /// Drains L1 eviction notifications for `core` (for the prefetcher's
    /// `on_evict` hook).
    pub fn take_l1_evictions(&mut self, core: usize) -> Vec<BlockAddr> {
        std::mem::take(&mut self.l1_evict_events[core])
    }

    /// Number of outstanding L1-level misses for `core` (occupied MSHRs),
    /// demands and prefetches combined.
    pub fn l1_mshr_occupancy(&self, core: usize) -> usize {
        self.l1_outstanding[core].len()
    }

    /// Outstanding *demand* misses at the L1 for `core`. Demand dispatch
    /// stalls against this count.
    pub fn l1_demand_occupancy(&self, core: usize) -> usize {
        self.l1_demand_count[core]
    }

    /// Outstanding L1-targeted *prefetches* for `core`. Prefetch issue is
    /// admitted against this count (modelling a dedicated prefetch fill
    /// buffer alongside the demand MSHRs).
    pub fn l1_prefetch_occupancy(&self, core: usize) -> usize {
        self.l1_prefetch_count[core]
    }

    /// Records `n` prefetch requests dropped because the prefetch queue was
    /// full (the queue itself lives in the system, not the hierarchy).
    pub fn note_prefetch_queue_drops(&mut self, core: usize, n: u64) {
        if self.stats_enabled {
            self.stats[core].prefetch.requested += n;
            self.stats[core].prefetch.dropped_queue_full += n;
        }
    }

    /// The earliest completion cycle among pending fills, if any. After
    /// [`advance_to`](Self::advance_to)`(now)` every remaining fill is
    /// strictly in the future, so this is the hierarchy's next event time —
    /// the cycle-skipping fast-forward target. O(1): the cached minimum is
    /// exact at all times.
    pub fn next_fill_at(&self) -> Option<u64> {
        (self.next_pending_at != u64::MAX).then_some(self.next_pending_at)
    }

    /// Schedules a fill and keeps the event queue's invariants.
    fn push_fill(&mut self, fill: PendingFill) {
        let seq = self.fill_seq;
        self.fill_seq += 1;
        self.next_pending_at = self.next_pending_at.min(fill.at);
        self.fill_queue.push(Reverse((fill.at, seq)));
        self.pending_fills.insert(seq, fill);
    }

    /// Applies all fills scheduled at or before `now`.
    pub fn advance_to(&mut self, now: u64) {
        // Called on every access and every cycle; the cached minimum makes
        // the no-fill-due case O(1).
        if self.next_pending_at > now {
            return;
        }
        // Pop due fills in (completion cycle, insertion seq) order so LRU
        // state evolves deterministically; skip handles superseded by a
        // promotion (their entry is gone by the time they surface, because
        // the promoted handle sorts earlier).
        while let Some(&Reverse((at, seq))) = self.fill_queue.peek() {
            let Some(fill) = self.pending_fills.get(&seq) else {
                self.fill_queue.pop();
                continue;
            };
            debug_assert_eq!(fill.at, at, "live heap handle matches its entry");
            if at > now {
                break;
            }
            self.fill_queue.pop();
            let fill = self
                .pending_fills
                .remove(&seq)
                .expect("entry checked above");
            self.apply_fill(fill);
        }
        // Recompute the cached minimum from the first live handle.
        self.next_pending_at = u64::MAX;
        while let Some(&Reverse((at, seq))) = self.fill_queue.peek() {
            if self.pending_fills.contains_key(&seq) {
                self.next_pending_at = at;
                break;
            }
            self.fill_queue.pop();
        }
        self.l2_inflight
            .iter_mut()
            .for_each(|v| v.retain(|&r| r > now));
        self.llc_inflight.retain(|&r| r > now);
    }

    fn apply_fill(&mut self, fill: PendingFill) {
        let core = fill.core;
        if fill.is_prefetch {
            self.l2_pf_inflight[core].remove(&fill.block.raw());
        }
        // A prefetch whose in-flight request was touched by a demand access is
        // installed as a demand line (it has already been credited as useful).
        // Usefulness metadata is carried only by the line at the prefetch's
        // target level; levels filled in passing install plain lines.
        let as_prefetch = fill.is_prefetch && !fill.demand_touched;
        if fill.fill_llc {
            let mark = as_prefetch && fill.target == Some(FillLevel::Llc);
            if fill.is_prefetch && fill.target == Some(FillLevel::Llc) && self.stats_enabled {
                self.stats[core].llc.prefetch_fills += 1;
            }
            if let Some(ev) = self.llc.fill(fill.block, mark, core) {
                if ev.was_prefetch && !ev.was_used && self.stats_enabled {
                    self.stats[core].llc.useless_prefetches += 1;
                }
            }
        }
        if fill.fill_l2 {
            let mark = as_prefetch && fill.target == Some(FillLevel::L2);
            if fill.is_prefetch && fill.target == Some(FillLevel::L2) && self.stats_enabled {
                self.stats[core].l2c.prefetch_fills += 1;
            }
            if let Some(ev) = self.l2c[core].fill(fill.block, mark, core) {
                if ev.was_prefetch && !ev.was_used && self.stats_enabled {
                    self.stats[core].l2c.useless_prefetches += 1;
                }
            }
        }
        if fill.fill_l1 {
            let mark = as_prefetch && fill.target == Some(FillLevel::L1);
            if fill.is_prefetch && fill.target == Some(FillLevel::L1) && self.stats_enabled {
                self.stats[core].l1d.prefetch_fills += 1;
            }
            if let Some(ev) = self.l1d[core].fill(fill.block, mark, core) {
                if ev.was_prefetch && !ev.was_used && self.stats_enabled {
                    self.stats[core].l1d.useless_prefetches += 1;
                }
                self.l1_evict_events[core].push(ev.block);
            }
            self.l1_fill_events[core].push(L1FillEvent {
                block: fill.block,
                was_prefetch: fill.is_prefetch,
            });
            // The miss (or prefetch) is no longer outstanding at the L1.
            if let Some(entry) = self.l1_outstanding[core].remove(fill.block.raw()) {
                if entry.is_prefetch {
                    self.l1_prefetch_count[core] -= 1;
                } else {
                    self.l1_demand_count[core] -= 1;
                }
                if entry.is_prefetch && entry.demand_touched && self.stats_enabled {
                    // Late-but-useful prefetch: credit usefulness at the L1.
                    self.stats[core].l1d.useful_prefetches += 1;
                }
            }
        }
    }

    fn l1_mshr_start(&self, core: usize, now: u64) -> u64 {
        let outstanding = &self.l1_outstanding[core];
        if outstanding.len() < self.cfg.l1d.mshrs {
            now
        } else {
            outstanding.min_ready().unwrap_or(now).max(now)
        }
    }

    fn l2_mshr_start(&mut self, core: usize, now: u64) -> u64 {
        let inflight = &mut self.l2_inflight[core];
        inflight.retain(|&r| r > now);
        if inflight.len() < self.cfg.l2c.mshrs {
            now
        } else {
            inflight.iter().copied().min().unwrap_or(now).max(now)
        }
    }

    fn llc_mshr_start(&mut self, now: u64) -> u64 {
        self.llc_inflight.retain(|&r| r > now);
        if self.llc_inflight.len() < self.cfg.llc_per_core.mshrs * self.cfg.cores {
            now
        } else {
            self.llc_inflight
                .iter()
                .copied()
                .min()
                .unwrap_or(now)
                .max(now)
        }
    }

    /// Performs a demand access for `core` to the line containing `block`.
    pub fn demand_access(
        &mut self,
        core: usize,
        block: BlockAddr,
        is_store: bool,
        now: u64,
    ) -> DemandResult {
        self.advance_to(now);
        let enabled = self.stats_enabled;
        if enabled {
            self.stats[core].l1d.demand_accesses += 1;
        }

        // L1D lookup.
        if let Some(hit) = self.l1d[core].demand_access(block, is_store) {
            if enabled {
                self.stats[core].l1d.demand_hits += 1;
                if hit.first_use_of_prefetch {
                    self.stats[core].l1d.useful_prefetches += 1;
                }
            }
            return DemandResult {
                complete_at: now + self.cfg.l1d.latency,
                l1_hit: true,
                served_by: HitLevel::L1,
            };
        }
        if enabled {
            self.stats[core].l1d.demand_misses += 1;
        }

        // Merge with an in-flight request if one exists. A late prefetch is
        // promoted to demand priority at the memory controller, so the merged
        // request completes no later than a freshly issued demand would.
        if let Some(entry) = self.l1_outstanding[core].get_mut(block.raw()) {
            let was_untouched_prefetch = entry.is_prefetch && !entry.demand_touched;
            if was_untouched_prefetch && enabled {
                self.stats[core].prefetch.late += 1;
            }
            entry.demand_touched = true;
            if entry.is_prefetch {
                let path =
                    self.cfg.l1d.latency + self.cfg.l2c.latency + self.cfg.llc_per_core.latency;
                let fresh = self.dram.estimate_demand(block, now + path);
                if fresh < entry.ready {
                    entry.ready = fresh;
                    let mut promoted = Vec::new();
                    // gaze-lint: allow(map_iteration) -- per-entry predicate + min() update; no effect depends on visit order
                    for (&seq, pending) in &mut self.pending_fills {
                        if pending.core == core
                            && pending.block == block
                            && pending.is_prefetch
                            && fresh < pending.at
                        {
                            pending.at = fresh;
                            promoted.push(seq);
                        }
                    }
                    for seq in promoted {
                        // Original seq keeps equal-cycle ordering stable.
                        self.fill_queue.push(Reverse((fresh, seq)));
                        self.next_pending_at = self.next_pending_at.min(fresh);
                    }
                }
            }
            let ready = entry.ready.max(now + self.cfg.l1d.latency);
            return DemandResult {
                complete_at: ready,
                l1_hit: false,
                served_by: HitLevel::InFlight,
            };
        }

        // True L1 miss: walk the lower levels.
        let start = self.l1_mshr_start(core, now);
        let l2_lookup_at = start + self.cfg.l1d.latency;
        if enabled {
            self.stats[core].l2c.demand_accesses += 1;
        }
        let (ready, served_by, fill_l2, fill_llc) =
            if let Some(hit) = self.l2c[core].demand_access(block, false) {
                if enabled {
                    self.stats[core].l2c.demand_hits += 1;
                    if hit.first_use_of_prefetch {
                        self.stats[core].l2c.useful_prefetches += 1;
                    }
                }
                (
                    l2_lookup_at + self.cfg.l2c.latency,
                    HitLevel::L2,
                    false,
                    false,
                )
            } else if let Some(&pf_ready) = self.l2_pf_inflight[core].get(&block.raw()) {
                // The block is already on its way to the L2 because of a
                // prefetch: merge with it instead of fetching again (a late but
                // useful prefetch, credited at the L2). The in-flight request is
                // promoted to demand priority, so it completes no later than a
                // freshly issued demand would have.
                if enabled {
                    self.stats[core].l2c.demand_misses += 1;
                    self.stats[core].prefetch.late += 1;
                    self.stats[core].l2c.useful_prefetches += 1;
                }
                let path = self.cfg.l2c.latency + self.cfg.llc_per_core.latency;
                let fresh = self.dram.estimate_demand(block, l2_lookup_at + path);
                let promoted = pf_ready.min(fresh);
                self.l2_pf_inflight[core].insert(block.raw(), promoted);
                let mut lowered = Vec::new();
                // gaze-lint: allow(map_iteration) -- per-entry predicate + min() update; no effect depends on visit order
                for (&seq, pending) in &mut self.pending_fills {
                    if pending.core == core && pending.block == block && pending.is_prefetch {
                        pending.demand_touched = true;
                        if promoted < pending.at {
                            pending.at = promoted;
                            lowered.push(seq);
                        }
                    }
                }
                for seq in lowered {
                    self.fill_queue.push(Reverse((promoted, seq)));
                    self.next_pending_at = self.next_pending_at.min(promoted);
                }
                let ready = promoted.max(l2_lookup_at) + self.cfg.l2c.latency;
                (ready, HitLevel::InFlight, false, false)
            } else {
                if enabled {
                    self.stats[core].l2c.demand_misses += 1;
                    self.stats[core].llc.demand_accesses += 1;
                }
                let l2_start = self.l2_mshr_start(core, l2_lookup_at);
                let llc_lookup_at = l2_start + self.cfg.l2c.latency;
                if let Some(hit) = self.llc.demand_access(block, false) {
                    if enabled {
                        self.stats[core].llc.demand_hits += 1;
                        if hit.first_use_of_prefetch {
                            self.stats[core].llc.useful_prefetches += 1;
                        }
                    }
                    let ready = llc_lookup_at + self.cfg.llc_per_core.latency;
                    self.l2_inflight[core].push(ready);
                    (ready, HitLevel::Llc, true, false)
                } else {
                    if enabled {
                        self.stats[core].llc.demand_misses += 1;
                    }
                    let llc_start = self.llc_mshr_start(llc_lookup_at);
                    let dram_at = llc_start + self.cfg.llc_per_core.latency;
                    let ready = self.dram.access(block, dram_at);
                    self.l2_inflight[core].push(ready);
                    self.llc_inflight.push(ready);
                    (ready, HitLevel::Dram, true, true)
                }
            };

        let prev = self.l1_outstanding[core].insert(
            block.raw(),
            Outstanding {
                ready,
                is_prefetch: false,
                demand_touched: true,
            },
        );
        debug_assert!(
            prev.is_none(),
            "demand insert over an existing outstanding entry"
        );
        self.l1_demand_count[core] += 1;
        self.push_fill(PendingFill {
            at: ready,
            core,
            block,
            is_prefetch: false,
            demand_touched: true,
            fill_l1: true,
            fill_l2,
            fill_llc,
            target: None,
        });
        DemandResult {
            complete_at: ready,
            l1_hit: false,
            served_by,
        }
    }

    /// Attempts to issue a prefetch on behalf of `core`.
    ///
    /// Returning [`PrefetchOutcome::MshrFull`] does not consume the request:
    /// the caller (the prefetch queue) is expected to retry it later, so MSHR
    /// pressure delays prefetches rather than silently discarding them.
    pub fn issue_prefetch(
        &mut self,
        core: usize,
        req: PrefetchRequest,
        now: u64,
    ) -> PrefetchOutcome {
        self.advance_to(now);
        let block = req.block;
        let enabled = self.stats_enabled;

        let redundant = match req.fill_level {
            FillLevel::L1 => self.l1d[core].contains(block),
            FillLevel::L2 => self.l1d[core].contains(block) || self.l2c[core].contains(block),
            FillLevel::Llc => {
                self.l1d[core].contains(block)
                    || self.l2c[core].contains(block)
                    || self.llc.contains(block)
            }
        } || self.l1_outstanding[core].contains(block.raw())
            || self.l2_pf_inflight[core].contains_key(&block.raw());
        if redundant {
            if enabled {
                self.stats[core].prefetch.requested += 1;
                self.stats[core].prefetch.dropped_redundant += 1;
            }
            return PrefetchOutcome::Redundant;
        }

        match req.fill_level {
            FillLevel::L1 => {
                // Prefetches are admitted against their own share of fill
                // buffers so a saturated demand stream cannot starve them
                // completely (and vice versa).
                if self.l1_prefetch_occupancy(core) >= self.cfg.l1d.mshrs {
                    return PrefetchOutcome::MshrFull;
                }
            }
            FillLevel::L2 | FillLevel::Llc => {
                self.l2_inflight[core].retain(|&r| r > now);
                if self.l2_inflight[core].len() >= self.cfg.l2c.mshrs {
                    return PrefetchOutcome::MshrFull;
                }
            }
        }

        let lookup_at = now + self.cfg.l1d.latency;
        let (ready, fill_l1, fill_l2, fill_llc) = if self.l2c[core].contains(block) {
            // Consuming a prefetched L2 line to move it up counts that line as
            // used (its usefulness will be observed at the L1 instead).
            self.l2c[core].demand_access(block, false);
            (
                lookup_at + self.cfg.l2c.latency,
                req.fill_level == FillLevel::L1,
                false,
                false,
            )
        } else if self.llc.contains(block) {
            self.llc.demand_access(block, false);
            let ready = lookup_at + self.cfg.l2c.latency + self.cfg.llc_per_core.latency;
            (ready, req.fill_level == FillLevel::L1, true, false)
        } else {
            let dram_at = lookup_at + self.cfg.l2c.latency + self.cfg.llc_per_core.latency;
            // Prefetch reads are refused (and retried later) when the DRAM
            // controller's prefetch backlog window is full.
            if !self.dram.accepts_prefetch(block, dram_at) {
                return PrefetchOutcome::MshrFull;
            }
            let ready = self.dram.access_prefetch(block, dram_at);
            (ready, req.fill_level == FillLevel::L1, true, true)
        };

        // An L1-targeted prefetch whose data is already in the L2 and which
        // would fill nothing new is still issued (it moves the line up).
        if enabled {
            self.stats[core].prefetch.requested += 1;
            self.stats[core].prefetch.issued += 1;
        }
        if req.fill_level == FillLevel::L1 {
            let prev = self.l1_outstanding[core].insert(
                block.raw(),
                Outstanding {
                    ready,
                    is_prefetch: true,
                    demand_touched: false,
                },
            );
            debug_assert!(
                prev.is_none(),
                "prefetch insert over an existing outstanding entry"
            );
            self.l1_prefetch_count[core] += 1;
        } else {
            self.l2_inflight[core].push(ready);
            self.l2_pf_inflight[core].insert(block.raw(), ready);
        }
        if fill_llc {
            self.llc_inflight.push(ready);
        }
        self.push_fill(PendingFill {
            at: ready,
            core,
            block,
            is_prefetch: true,
            demand_touched: false,
            fill_l1,
            fill_l2: fill_l2 || (req.fill_level == FillLevel::L2),
            fill_llc: fill_llc || (req.fill_level == FillLevel::Llc),
            target: Some(req.fill_level),
        });
        PrefetchOutcome::Issued
    }

    /// Read-only mirror of [`issue_prefetch`](Self::issue_prefetch)'s gating
    /// for queue-aware cycle skipping: the earliest cycle at which an attempt
    /// to issue `req` could *consume* it (issue or drop-as-redundant) rather
    /// than be refused with `MshrFull`, assuming no intervening simulation
    /// activity. `0` means an attempt would consume it right now.
    ///
    /// The bound is conservative (never later than the true clear time):
    /// while every core is stalled, cache contents, outstanding tables and
    /// DRAM channel backlog are all frozen until the next fill applies, so
    /// the only time-dependent refusals are the ones reproduced here —
    /// L1 prefetch fill buffers free when a pending fill applies
    /// ([`next_fill_at`](Self::next_fill_at)), L2 MSHR reservations expire at
    /// recorded completion times, and the DRAM prefetch-backlog window
    /// reopens as the channel bus drains. The skip target additionally
    /// includes `next_fill_at` itself, so a bound that clears only at a fill
    /// is never overshot.
    pub fn prefetch_block_clear_at(&self, core: usize, req: &PrefetchRequest, now: u64) -> u64 {
        let block = req.block;
        let redundant = match req.fill_level {
            FillLevel::L1 => self.l1d[core].contains(block),
            FillLevel::L2 => self.l1d[core].contains(block) || self.l2c[core].contains(block),
            FillLevel::Llc => {
                self.l1d[core].contains(block)
                    || self.l2c[core].contains(block)
                    || self.llc.contains(block)
            }
        } || self.l1_outstanding[core].contains(block.raw())
            || self.l2_pf_inflight[core].contains_key(&block.raw());
        if redundant {
            return 0;
        }

        let mut clear = 0u64;
        match req.fill_level {
            FillLevel::L1 => {
                if self.l1_prefetch_occupancy(core) >= self.cfg.l1d.mshrs {
                    // Prefetch fill buffers free only when a fill applies.
                    clear = clear.max(self.next_pending_at);
                }
            }
            FillLevel::L2 | FillLevel::Llc => {
                // Live entries are those `issue_prefetch`'s retain would
                // keep; the earliest expiry is when one MSHR frees. (A
                // demand-promoted prefetch can leave an entry whose expiry
                // is not any pending fill's time, so this is a distinct
                // wake source from `next_fill_at`.)
                let mut live = 0usize;
                let mut earliest = u64::MAX;
                for &r in &self.l2_inflight[core] {
                    if r > now {
                        live += 1;
                        earliest = earliest.min(r);
                    }
                }
                if live >= self.cfg.l2c.mshrs {
                    clear = clear.max(earliest);
                }
            }
        }

        // Off-chip requests are additionally refused while the DRAM
        // prefetch-backlog window is full; translate the channel's
        // acceptance time from DRAM-arrival space back to issue cycles.
        if !self.l2c[core].contains(block) && !self.llc.contains(block) {
            let path = self.cfg.l1d.latency + self.cfg.l2c.latency + self.cfg.llc_per_core.latency;
            clear = clear.max(self.dram.prefetch_accepted_from(block).saturating_sub(path));
        }
        clear
    }

    /// Flushes all pending fills and accounts still-resident unused
    /// prefetched lines as useless. Call once at the end of a measured run.
    pub fn finalize(&mut self) {
        self.advance_to(u64::MAX);
        if !self.stats_enabled {
            return;
        }
        let mut l1_useless = vec![0u64; self.stats.len()];
        let mut l2_useless = vec![0u64; self.stats.len()];
        let mut llc_useless = vec![0u64; self.stats.len()];
        for (core, l1) in self.l1d.iter().enumerate() {
            for (_, prefetched, used, _) in l1.resident_lines() {
                if prefetched && !used {
                    l1_useless[core] += 1;
                }
            }
        }
        for (core, l2) in self.l2c.iter().enumerate() {
            for (_, prefetched, used, _) in l2.resident_lines() {
                if prefetched && !used {
                    l2_useless[core] += 1;
                }
            }
        }
        for (_, prefetched, used, owner) in self.llc.resident_lines() {
            if prefetched && !used {
                llc_useless[owner.min(self.stats.len() - 1)] += 1;
            }
        }
        for core in 0..self.stats.len() {
            self.stats[core].l1d.useless_prefetches += l1_useless[core];
            self.stats[core].l2c.useless_prefetches += l2_useless[core];
            self.stats[core].llc.useless_prefetches += llc_useless[core];
        }
    }

    /// DRAM statistics (shared across cores).
    pub fn dram_stats(&self) -> crate::dram::DramStats {
        self.dram.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn hierarchy() -> MemoryHierarchy {
        MemoryHierarchy::new(SimConfig::paper_single_core())
    }

    #[test]
    fn cold_miss_goes_to_dram_then_hits_l1() {
        let mut h = hierarchy();
        let b = BlockAddr::new(0x1000);
        let r = h.demand_access(0, b, false, 0);
        assert!(!r.l1_hit);
        assert_eq!(r.served_by, HitLevel::Dram);
        assert!(
            r.complete_at > 100,
            "off-chip access should take >100 cycles, got {}",
            r.complete_at
        );
        // After the fill time passes, the same block hits in L1.
        let r2 = h.demand_access(0, b, false, r.complete_at + 1);
        assert!(r2.l1_hit);
        assert_eq!(r2.complete_at, r.complete_at + 1 + 5);
        let s = h.stats(0);
        assert_eq!(s.l1d.demand_accesses, 2);
        assert_eq!(s.l1d.demand_misses, 1);
        assert_eq!(s.llc.demand_misses, 1);
    }

    #[test]
    fn merge_with_inflight_demand() {
        let mut h = hierarchy();
        let b = BlockAddr::new(0x2000);
        let r1 = h.demand_access(0, b, false, 0);
        let r2 = h.demand_access(0, b, false, 10);
        assert_eq!(r2.served_by, HitLevel::InFlight);
        assert!(r2.complete_at <= r1.complete_at.max(10 + 5));
        // Only one off-chip read happened.
        assert_eq!(h.dram_stats().reads, 1);
    }

    #[test]
    fn prefetch_then_demand_is_useful_and_hits() {
        let mut h = hierarchy();
        let b = BlockAddr::new(0x3000);
        assert_eq!(
            h.issue_prefetch(0, PrefetchRequest::to_l1(b), 0),
            PrefetchOutcome::Issued
        );
        // Demand arrives well after the prefetch completed.
        let r = h.demand_access(0, b, false, 10_000);
        assert!(r.l1_hit);
        let s = h.stats(0);
        assert_eq!(s.l1d.useful_prefetches, 1);
        assert_eq!(s.prefetch.late, 0);
        assert_eq!(s.prefetch.issued, 1);
    }

    #[test]
    fn late_prefetch_detected() {
        let mut h = hierarchy();
        let b = BlockAddr::new(0x4000);
        h.issue_prefetch(0, PrefetchRequest::to_l1(b), 0);
        // Demand arrives while the prefetch is still in flight.
        let r = h.demand_access(0, b, false, 3);
        assert_eq!(r.served_by, HitLevel::InFlight);
        let s = h.stats(0);
        assert_eq!(s.prefetch.late, 1);
        // After the fill, usefulness is credited exactly once.
        h.advance_to(r.complete_at + 1);
        assert_eq!(h.stats(0).l1d.useful_prefetches, 1);
    }

    #[test]
    fn redundant_prefetch_dropped() {
        let mut h = hierarchy();
        let b = BlockAddr::new(0x5000);
        let r = h.demand_access(0, b, false, 0);
        let t = r.complete_at + 1;
        assert_eq!(
            h.issue_prefetch(0, PrefetchRequest::to_l1(b), t),
            PrefetchOutcome::Redundant
        );
        assert_eq!(h.stats(0).prefetch.dropped_redundant, 1);
    }

    #[test]
    fn l2_fill_prefetch_serves_later_l1_miss_from_l2() {
        let mut h = hierarchy();
        let b = BlockAddr::new(0x6000);
        h.issue_prefetch(0, PrefetchRequest::to_l2(b), 0);
        let r = h.demand_access(0, b, false, 10_000);
        assert!(!r.l1_hit);
        assert_eq!(r.served_by, HitLevel::L2);
        let s = h.stats(0);
        assert_eq!(s.l2c.useful_prefetches, 1);
        assert_eq!(s.l2c.prefetch_fills, 1);
        assert_eq!(s.l1d.prefetch_fills, 0);
    }

    #[test]
    fn unused_prefetch_counted_useless_at_finalize() {
        let mut h = hierarchy();
        h.issue_prefetch(0, PrefetchRequest::to_l1(BlockAddr::new(0x7000)), 0);
        h.finalize();
        let s = h.stats(0);
        // The block resides in L1, L2 and LLC, but only the targeted level
        // (L1) carries the prefetch metadata, so it is counted useless once.
        assert_eq!(s.l1d.useless_prefetches, 1);
        assert_eq!(s.l2c.useless_prefetches + s.llc.useless_prefetches, 0);
    }

    #[test]
    fn mshr_limit_defers_excess_prefetches() {
        let mut h = hierarchy();
        let mshrs = h.config().l1d.mshrs;
        let mut deferred = 0;
        for i in 0..(mshrs + 8) {
            if h.issue_prefetch(
                0,
                PrefetchRequest::to_l1(BlockAddr::new(0x10_0000 + i as u64)),
                0,
            ) == PrefetchOutcome::MshrFull
            {
                deferred += 1;
            }
        }
        assert_eq!(deferred, 8);
        assert_eq!(h.stats(0).prefetch.issued, mshrs as u64);
        assert_eq!(h.l1_mshr_occupancy(0), mshrs);
        // Once time passes and the fills land, the MSHRs free up again.
        h.advance_to(100_000);
        assert_eq!(h.l1_mshr_occupancy(0), 0);
        assert_eq!(
            h.issue_prefetch(
                0,
                PrefetchRequest::to_l1(BlockAddr::new(0x20_0000)),
                100_000
            ),
            PrefetchOutcome::Issued
        );
    }

    #[test]
    fn l1_fill_and_evict_notifications_are_produced() {
        let mut h = hierarchy();
        let b = BlockAddr::new(0x8000);
        let r = h.demand_access(0, b, false, 0);
        h.advance_to(r.complete_at);
        let fills = h.take_l1_fills(0);
        assert_eq!(fills.len(), 1);
        assert_eq!(fills[0].block, b);
        assert!(!fills[0].was_prefetch);
        assert!(h.take_l1_fills(0).is_empty(), "notifications are drained");
    }

    #[test]
    fn warmup_statistics_can_be_disabled_and_reset() {
        let mut h = hierarchy();
        h.set_stats_enabled(false);
        h.demand_access(0, BlockAddr::new(0x9000), false, 0);
        assert_eq!(h.stats(0).l1d.demand_accesses, 0);
        h.set_stats_enabled(true);
        h.demand_access(0, BlockAddr::new(0xa000), false, 0);
        assert_eq!(h.stats(0).l1d.demand_accesses, 1);
        h.reset_stats();
        assert_eq!(h.stats(0).l1d.demand_accesses, 0);
    }

    #[test]
    fn outstanding_table_matches_a_reference_map_under_churn() {
        // Deterministic LCG churn: interleaved inserts, removes, lookups
        // and mutations, mirrored against std's HashMap.
        let mut table = OutstandingTable::new();
        let mut reference: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut lcg = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for step in 0..20_000u64 {
            let r = lcg();
            // Small key space forces collisions; keys look like block numbers.
            let key = (r >> 8) % 257;
            match r % 4 {
                0 | 1 => {
                    let entry = Outstanding {
                        ready: step,
                        is_prefetch: r & 16 != 0,
                        demand_touched: false,
                    };
                    let prev = table.insert(key, entry).map(|o| o.ready);
                    assert_eq!(prev, reference.insert(key, step), "step {step}");
                }
                2 => {
                    let removed = table.remove(key).map(|o| o.ready);
                    assert_eq!(removed, reference.remove(&key), "step {step}");
                }
                _ => {
                    let got = table.get_mut(key).map(|o| &mut o.ready);
                    match (got, reference.get_mut(&key)) {
                        (Some(a), Some(b)) => {
                            assert_eq!(*a, *b, "step {step}");
                            *a += 1;
                            *b += 1;
                        }
                        (None, None) => {}
                        (a, b) => panic!("step {step}: {a:?} vs {b:?}"),
                    }
                }
            }
            assert_eq!(table.len(), reference.len(), "step {step}");
            assert_eq!(table.contains(key), reference.contains_key(&key));
            assert_eq!(table.min_ready(), reference.values().min().copied());
        }
        // Drain everything through backward-shift deletion.
        let keys: Vec<u64> = reference.keys().copied().collect();
        for key in keys {
            assert!(table.remove(key).is_some());
        }
        assert_eq!(table.len(), 0);
        assert_eq!(table.min_ready(), None);
    }

    #[test]
    fn outstanding_table_grows_past_its_initial_capacity() {
        let mut table = OutstandingTable::new();
        let n = (OutstandingTable::INITIAL_CAPACITY * 4) as u64;
        for key in 0..n {
            assert!(table
                .insert(
                    key,
                    Outstanding {
                        ready: key * 10,
                        is_prefetch: false,
                        demand_touched: false,
                    },
                )
                .is_none());
        }
        assert_eq!(table.len(), n as usize);
        assert_eq!(table.min_ready(), Some(0));
        for key in 0..n {
            assert_eq!(table.remove(key).map(|o| o.ready), Some(key * 10));
        }
        assert_eq!(table.len(), 0);
    }

    #[test]
    fn multicore_cores_have_private_l1() {
        let mut h = MemoryHierarchy::new(SimConfig::paper_multi_core(2));
        let b = BlockAddr::new(0xb000);
        let r = h.demand_access(0, b, false, 0);
        h.advance_to(r.complete_at);
        // Core 1 does not see core 0's L1/L2 contents but shares the LLC.
        let r1 = h.demand_access(1, b, false, r.complete_at + 1);
        assert!(!r1.l1_hit);
        assert_eq!(r1.served_by, HitLevel::Llc);
    }
}
