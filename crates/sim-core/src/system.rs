//! The full simulated system: cores + prefetchers + memory hierarchy.
//!
//! [`System`] owns one [`CoreModel`](crate::core::CoreModel), one trace
//! cursor, one L1D prefetcher (and optionally an L2C prefetcher, for the
//! multi-level study of Fig. 13) per core, plus the shared
//! [`MemoryHierarchy`](crate::hierarchy::MemoryHierarchy). Simulation follows
//! the paper's methodology: every core first executes a warm-up instruction
//! budget with statistics disabled, then a measured budget; cores that finish
//! early keep replaying their trace so that multi-core contention persists
//! until the slowest core completes.

use std::collections::VecDeque;

use prefetch_common::access::{AccessKind, DemandAccess};
use prefetch_common::prefetcher::Prefetcher;
use prefetch_common::request::{FillLevel, PrefetchRequest};

use crate::config::SimConfig;
use crate::core::CoreModel;
use crate::hierarchy::MemoryHierarchy;
use crate::stats::{CoreStats, SimReport};
use crate::trace::{Trace, TraceCursor, TraceRecord};

/// Maximum cycles per retired instruction before the simulator declares the
/// run wedged. Generous enough for fully memory-bound phases.
const DEADLOCK_CYCLES_PER_INSTR: u64 = 10_000;

struct PerCore<'t> {
    core: CoreModel,
    cursor: TraceCursor<'t>,
    l1_prefetcher: Box<dyn Prefetcher>,
    l2_prefetcher: Option<Box<dyn Prefetcher>>,
    prefetch_queue: VecDeque<PrefetchRequest>,
    pending: Option<(TraceRecord, u32)>,
    instr_id: u64,
    measured_cycles: Option<u64>,
    measure_start_cycle: u64,
    measured_instructions: u64,
}

/// A complete simulated machine executing one trace per core.
pub struct System<'t> {
    cfg: SimConfig,
    hierarchy: MemoryHierarchy,
    cores: Vec<PerCore<'t>>,
    cycle: u64,
}

impl<'t> System<'t> {
    /// Builds a single-core system.
    pub fn single_core(cfg: SimConfig, trace: &'t Trace, prefetcher: Box<dyn Prefetcher>) -> Self {
        assert_eq!(cfg.cores, 1, "single_core requires a 1-core configuration");
        Self::new(cfg, vec![trace], vec![prefetcher])
    }

    /// Builds a system with one trace and one L1D prefetcher per core.
    ///
    /// # Panics
    ///
    /// Panics if the number of traces or prefetchers does not match
    /// `cfg.cores`.
    pub fn new(cfg: SimConfig, traces: Vec<&'t Trace>, prefetchers: Vec<Box<dyn Prefetcher>>) -> Self {
        assert_eq!(traces.len(), cfg.cores, "one trace per core required");
        assert_eq!(prefetchers.len(), cfg.cores, "one prefetcher per core required");
        let hierarchy = MemoryHierarchy::new(cfg);
        let cores = traces
            .into_iter()
            .zip(prefetchers)
            .map(|(trace, l1_prefetcher)| PerCore {
                core: CoreModel::new(cfg.core),
                cursor: trace.cursor(),
                l1_prefetcher,
                l2_prefetcher: None,
                prefetch_queue: VecDeque::new(),
                pending: None,
                instr_id: 0,
                measured_cycles: None,
                measure_start_cycle: 0,
                measured_instructions: 0,
            })
            .collect();
        System { cfg, hierarchy, cores, cycle: 0 }
    }

    /// Attaches an L2C prefetcher to `core` (multi-level prefetching,
    /// Fig. 13). The L2 prefetcher trains on the demand stream that misses
    /// the L1D and its requests are clamped to fill the L2C or below.
    pub fn set_l2_prefetcher(&mut self, core: usize, prefetcher: Box<dyn Prefetcher>) {
        self.cores[core].l2_prefetcher = Some(prefetcher);
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    fn enqueue_prefetches(
        queue: &mut VecDeque<PrefetchRequest>,
        cap: usize,
        requests: Vec<PrefetchRequest>,
        dropped_queue_full: &mut u64,
    ) {
        for req in requests {
            if queue.len() >= cap {
                *dropped_queue_full += 1;
            } else {
                queue.push_back(req);
            }
        }
    }

    fn step_core(&mut self, idx: usize, measuring: bool, target: u64) {
        let now = self.cycle;
        let cfg = self.cfg;
        let pc = &mut self.cores[idx];
        let mut dropped_queue_full = 0u64;

        // 1. Deliver fill / eviction notifications to the L1 prefetcher.
        for fill in self.hierarchy.take_l1_fills(idx) {
            pc.l1_prefetcher.on_fill(fill.block, fill.was_prefetch);
        }
        for block in self.hierarchy.take_l1_evictions(idx) {
            pc.l1_prefetcher.on_evict(block);
        }

        // 2. Give the prefetcher its cycle tick (e.g. Gaze's Prefetch Buffer
        //    drains a few blocks per cycle).
        let ticked = pc.l1_prefetcher.tick();
        Self::enqueue_prefetches(&mut pc.prefetch_queue, cfg.prefetch_queue, ticked, &mut dropped_queue_full);

        // 3. Retire.
        let before = pc.core.retired_instructions();
        pc.core.retire(now);
        let after = pc.core.retired_instructions();
        if measuring && pc.measured_cycles.is_none() {
            pc.measured_instructions = after;
            if after >= target {
                pc.measured_cycles = Some(now.saturating_sub(pc.measure_start_cycle).max(1));
            }
        }
        let _ = before;

        // 4. Dispatch up to `width` instructions.
        for _ in 0..cfg.core.width {
            if !pc.core.can_dispatch() {
                break;
            }
            if pc.pending.is_none() {
                let rec = pc.cursor.next_record();
                pc.pending = Some((rec, rec.non_mem_before));
            }
            let (rec, remaining) = pc.pending.expect("pending record present");
            if remaining > 0 {
                pc.core.dispatch_simple(now);
                pc.pending = Some((rec, remaining - 1));
                continue;
            }
            // The memory instruction itself. Loads stall at dispatch when the
            // load queue or the L1D demand MSHRs are exhausted, which is what
            // bounds the memory-level parallelism a single core can expose.
            if !rec.is_store
                && (!pc.core.can_dispatch_load(now)
                    || self.hierarchy.l1_demand_occupancy(idx) >= cfg.l1d.mshrs)
            {
                break;
            }
            pc.instr_id += 1;
            let access = DemandAccess {
                pc: rec.pc,
                addr: rec.addr,
                kind: if rec.is_store { AccessKind::Store } else { AccessKind::Load },
                instr_id: pc.instr_id,
            };
            let result = self.hierarchy.demand_access(idx, rec.addr.block(), rec.is_store, now);
            let requests = pc.l1_prefetcher.on_access(&access, result.l1_hit);
            Self::enqueue_prefetches(
                &mut pc.prefetch_queue,
                cfg.prefetch_queue,
                requests,
                &mut dropped_queue_full,
            );
            if !result.l1_hit {
                if let Some(l2pf) = pc.l2_prefetcher.as_mut() {
                    let l2_hit = matches!(result.served_by, crate::hierarchy::HitLevel::L2);
                    let l2_requests: Vec<PrefetchRequest> = l2pf
                        .on_access(&access, l2_hit)
                        .into_iter()
                        .map(|mut r| {
                            if r.fill_level == FillLevel::L1 {
                                r.fill_level = FillLevel::L2;
                            }
                            r
                        })
                        .collect();
                    Self::enqueue_prefetches(
                        &mut pc.prefetch_queue,
                        cfg.prefetch_queue,
                        l2_requests,
                        &mut dropped_queue_full,
                    );
                }
            }
            if rec.is_store {
                pc.core.dispatch_simple(now);
            } else {
                pc.core.dispatch_load(result.complete_at);
            }
            pc.pending = None;
        }

        // 5. Issue prefetches from the queue, after demands so that demand
        //    misses get MSHRs first. A prefetch that cannot get a fill-buffer
        //    slot is rotated to the back of the queue (it is not lost and it
        //    does not block requests behind it targeting other levels).
        for _ in 0..cfg.prefetch_issue_width {
            let Some(req) = pc.prefetch_queue.pop_front() else { break };
            if self.hierarchy.issue_prefetch(idx, req, now) == crate::hierarchy::PrefetchOutcome::MshrFull {
                pc.prefetch_queue.push_back(req);
            }
        }
        if dropped_queue_full > 0 {
            self.hierarchy.note_prefetch_queue_drops(idx, dropped_queue_full);
        }
    }

    fn run_phase(&mut self, instructions_per_core: u64, measuring: bool) {
        for pc in &mut self.cores {
            pc.core.reset_retired();
            pc.measured_cycles = None;
            pc.measure_start_cycle = self.cycle;
            pc.measured_instructions = 0;
        }
        let deadline = self.cycle + instructions_per_core.max(1) * DEADLOCK_CYCLES_PER_INSTR;
        loop {
            let all_done = self
                .cores
                .iter()
                .all(|pc| pc.core.retired_instructions() >= instructions_per_core);
            if all_done {
                break;
            }
            assert!(self.cycle < deadline, "simulation wedged: no forward progress");
            // Apply any cache fills that completed by this cycle so that
            // MSHRs free and stalled cores can make progress even on cycles
            // where they issue no new requests.
            self.hierarchy.advance_to(self.cycle);
            for idx in 0..self.cores.len() {
                self.step_core(idx, measuring, instructions_per_core);
            }
            self.cycle += 1;
        }
        if measuring {
            // Any core that reached the target exactly at the final cycle.
            for pc in &mut self.cores {
                if pc.measured_cycles.is_none() {
                    pc.measured_instructions = pc.core.retired_instructions();
                    pc.measured_cycles = Some(self.cycle.saturating_sub(pc.measure_start_cycle).max(1));
                }
            }
        }
    }

    /// Runs `warmup` instructions per core with statistics disabled, then
    /// `measured` instructions per core with statistics enabled, and returns
    /// the per-core report.
    pub fn run(&mut self, warmup: u64, measured: u64) -> SimReport {
        assert!(measured > 0, "measured instruction budget must be positive");
        if warmup > 0 {
            self.hierarchy.set_stats_enabled(false);
            self.run_phase(warmup, false);
        }
        self.hierarchy.set_stats_enabled(true);
        self.hierarchy.reset_stats();
        self.run_phase(measured, true);
        self.hierarchy.finalize();

        let cores = self
            .cores
            .iter()
            .enumerate()
            .map(|(idx, pc)| {
                let h = self.hierarchy.stats(idx);
                CoreStats {
                    instructions: pc.measured_instructions.max(measured),
                    cycles: pc.measured_cycles.unwrap_or(1),
                    l1d: h.l1d,
                    l2c: h.l2c,
                    llc: h.llc,
                    prefetch: h.prefetch,
                }
            })
            .collect();
        SimReport { cores }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefetch_common::prefetcher::NullPrefetcher;

    /// A deliberately aggressive prefetcher used only in tests: prefetches
    /// the next `degree` sequential blocks on every access, the first
    /// `l1_degree` of them into the L1D and the remainder into the L2C
    /// (the same fill-level split real spatial prefetchers use).
    struct NextLine {
        degree: usize,
        l1_degree: usize,
    }

    impl Prefetcher for NextLine {
        fn name(&self) -> &str {
            "test-next-line"
        }

        fn on_access(&mut self, access: &DemandAccess, _hit: bool) -> Vec<PrefetchRequest> {
            (1..=self.degree as i64)
                .map(|d| {
                    let block = access.block().offset_by(d);
                    if d <= self.l1_degree as i64 {
                        PrefetchRequest::to_l1(block)
                    } else {
                        PrefetchRequest::to_l2(block)
                    }
                })
                .collect()
        }

        fn storage_bits(&self) -> u64 {
            0
        }
    }

    fn streaming_trace(records: usize) -> Trace {
        let recs = (0..records)
            .map(|i| TraceRecord::load(0x400000, 0x10_0000 + i as u64 * 64, 4))
            .collect();
        Trace::new("stream", recs)
    }

    fn random_ish_trace(records: usize) -> Trace {
        // Deterministic pseudo-random walk over a 16 MB footprint.
        let mut state = 0x12345678u64;
        let recs = (0..records)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let addr = (state >> 16) % (16 * 1024 * 1024);
                TraceRecord::load(0x400100 + (i as u64 % 7) * 4, addr & !63, 2)
            })
            .collect();
        Trace::new("random", recs)
    }

    #[test]
    fn system_runs_and_reports_ipc() {
        let trace = streaming_trace(2000);
        let mut sys = System::single_core(SimConfig::paper_single_core(), &trace, Box::new(NullPrefetcher::new()));
        let report = sys.run(1_000, 5_000);
        assert_eq!(report.cores.len(), 1);
        let ipc = report.cores[0].ipc();
        assert!(ipc > 0.05 && ipc <= 4.0, "IPC {ipc} out of plausible range");
        assert!(report.cores[0].l1d.demand_accesses > 0);
    }

    #[test]
    fn prefetching_improves_streaming_ipc() {
        let trace = streaming_trace(4000);
        let cfg = SimConfig::paper_single_core();
        let base = System::single_core(cfg, &trace, Box::new(NullPrefetcher::new())).run(2_000, 20_000);
        let pref = System::single_core(cfg, &trace, Box::new(NextLine { degree: 16, l1_degree: 4 }))
            .run(2_000, 20_000);
        let speedup = pref.speedup_over(&base);
        assert!(speedup > 1.05, "next-line prefetching should speed up streaming, got {speedup:.3}");
        assert!(pref.cores[0].overall_accuracy() > 0.8);
    }

    #[test]
    fn useless_prefetches_hurt_accuracy_on_random_accesses() {
        let trace = random_ish_trace(3000);
        let cfg = SimConfig::paper_single_core();
        let pref = System::single_core(cfg, &trace, Box::new(NextLine { degree: 4, l1_degree: 4 }))
            .run(1_000, 10_000);
        assert!(
            pref.cores[0].overall_accuracy() < 0.5,
            "random accesses should make next-line inaccurate, got {:.3}",
            pref.cores[0].overall_accuracy()
        );
    }

    #[test]
    fn multicore_run_produces_per_core_stats() {
        let t0 = streaming_trace(1500);
        let t1 = random_ish_trace(1500);
        let cfg = SimConfig::paper_multi_core(2);
        let mut sys = System::new(
            cfg,
            vec![&t0, &t1],
            vec![Box::new(NullPrefetcher::new()), Box::new(NullPrefetcher::new())],
        );
        let report = sys.run(500, 4_000);
        assert_eq!(report.cores.len(), 2);
        assert!(report.cores.iter().all(|c| c.instructions >= 4_000));
        assert!(report.cores.iter().all(|c| c.cycles > 0));
    }

    #[test]
    fn l2_prefetcher_requests_are_clamped_to_l2() {
        let trace = streaming_trace(2000);
        let cfg = SimConfig::paper_single_core();
        let mut sys = System::single_core(cfg, &trace, Box::new(NullPrefetcher::new()));
        sys.set_l2_prefetcher(0, Box::new(NextLine { degree: 2, l1_degree: 2 }));
        let report = sys.run(500, 8_000);
        // The L2 prefetcher produced fills at the L2, never at the L1.
        assert_eq!(report.cores[0].l1d.prefetch_fills, 0);
        assert!(report.cores[0].l2c.prefetch_fills > 0);
    }

    #[test]
    #[should_panic(expected = "one trace per core")]
    fn trace_count_must_match_cores() {
        let trace = streaming_trace(10);
        let _ = System::new(SimConfig::paper_multi_core(2), vec![&trace], vec![Box::new(NullPrefetcher::new())]);
    }
}
