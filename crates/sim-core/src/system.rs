//! The full simulated system: cores + prefetchers + memory hierarchy.
//!
//! [`System`] owns one [`CoreModel`], one trace
//! reader, one L1D prefetcher (and optionally an L2C prefetcher, for the
//! multi-level study of Fig. 13) per core, plus the shared
//! [`MemoryHierarchy`]. Traces arrive as
//! [`TraceSource`]s, so an in-memory [`Trace`](crate::trace::Trace) and a
//! streamed on-disk [`GztTrace`](crate::gzt::GztTrace) are interchangeable
//! (and produce bit-identical reports). Simulation follows the paper's
//! methodology: every core first executes a warm-up instruction budget with
//! statistics disabled, then a measured budget; cores that finish early keep
//! replaying their trace so that multi-core contention persists until the
//! slowest core completes.

use std::collections::VecDeque;

use prefetch_common::access::{AccessKind, DemandAccess};
use prefetch_common::prefetcher::Prefetcher;
use prefetch_common::request::{FillLevel, PrefetchRequest};
use prefetch_common::sink::RequestSink;

use crate::config::SimConfig;
use crate::core::CoreModel;
use crate::hierarchy::MemoryHierarchy;
use crate::stats::{CoreStats, SimReport};
use crate::trace::{TraceReader, TraceRecord, TraceSource};

/// Maximum cycles per retired instruction before the simulator declares the
/// run wedged. Generous enough for fully memory-bound phases.
const DEADLOCK_CYCLES_PER_INSTR: u64 = 10_000;

struct PerCore<'t> {
    core: CoreModel,
    reader: Box<dyn TraceReader + 't>,
    l1_prefetcher: Box<dyn Prefetcher>,
    l2_prefetcher: Option<Box<dyn Prefetcher>>,
    prefetch_queue: VecDeque<PrefetchRequest>,
    /// Reusable request buffer for this core's prefetcher hooks — the hot
    /// path never allocates.
    sink: RequestSink,
    pending: Option<(TraceRecord, u32)>,
    instr_id: u64,
    measured_cycles: Option<u64>,
    measure_start_cycle: u64,
    measured_instructions: u64,
}

/// A complete simulated machine executing one trace per core.
pub struct System<'t> {
    cfg: SimConfig,
    hierarchy: MemoryHierarchy,
    cores: Vec<PerCore<'t>>,
    cycle: u64,
    cycle_skip: bool,
    /// Cycles this system stepped one at a time (accumulated locally —
    /// the per-cycle loop must not touch shared atomics).
    cycles_stepped: u64,
    /// Cycles fast-forwarded over by event-driven skipping.
    cycles_skipped: u64,
    /// Cycles jumped over solely to reach the wedge deadline when no event
    /// was scheduled. Kept apart from `cycles_skipped`: a wedge jump is a
    /// failure path, not recovered idle time, and must not inflate the
    /// skip-engagement numbers the bench harness reports.
    cycles_wedged: u64,
    /// Watermarks of what has already been folded into the process-global
    /// metrics, so the public getters can stay cumulative across runs.
    published_stepped: u64,
    published_skipped: u64,
}

impl<'t> System<'t> {
    /// Builds a single-core system.
    pub fn single_core(
        cfg: SimConfig,
        trace: &'t dyn TraceSource,
        prefetcher: Box<dyn Prefetcher>,
    ) -> Self {
        assert_eq!(cfg.cores, 1, "single_core requires a 1-core configuration");
        Self::new(cfg, vec![trace], vec![prefetcher])
    }

    /// Builds a system with one trace source and one L1D prefetcher per
    /// core. The same source may back several cores (homogeneous mixes) —
    /// every core gets its own independent reader.
    ///
    /// # Panics
    ///
    /// Panics if the number of traces or prefetchers does not match
    /// `cfg.cores`.
    pub fn new(
        cfg: SimConfig,
        traces: Vec<&'t dyn TraceSource>,
        prefetchers: Vec<Box<dyn Prefetcher>>,
    ) -> Self {
        assert_eq!(traces.len(), cfg.cores, "one trace per core required");
        assert_eq!(
            prefetchers.len(),
            cfg.cores,
            "one prefetcher per core required"
        );
        let hierarchy = MemoryHierarchy::new(cfg);
        let cores = traces
            .into_iter()
            .zip(prefetchers)
            .map(|(trace, l1_prefetcher)| PerCore {
                core: CoreModel::new(cfg.core),
                reader: trace.reader(),
                l1_prefetcher,
                l2_prefetcher: None,
                prefetch_queue: VecDeque::new(),
                sink: RequestSink::new(),
                pending: None,
                instr_id: 0,
                measured_cycles: None,
                measure_start_cycle: 0,
                measured_instructions: 0,
            })
            .collect();
        System {
            cfg,
            hierarchy,
            cores,
            cycle: 0,
            cycle_skip: true,
            cycles_stepped: 0,
            cycles_skipped: 0,
            cycles_wedged: 0,
            published_stepped: 0,
            published_skipped: 0,
        }
    }

    /// Enables or disables event-driven cycle skipping (on by default).
    ///
    /// Skipping fast-forwards the clock over cycles that are provably
    /// no-ops: every core stalled, and every queued prefetch guaranteed to
    /// be refused (MSHRs full, DRAM backlog window closed) until the
    /// fast-forward target. It is exact — every statistic is bit-identical
    /// to the unskipped simulation — and exists as a toggle only so tests
    /// can assert that equivalence.
    pub fn set_cycle_skip(&mut self, enabled: bool) {
        self.cycle_skip = enabled;
    }

    /// Attaches an L2C prefetcher to `core` (multi-level prefetching,
    /// Fig. 13). The L2 prefetcher trains on the demand stream that misses
    /// the L1D and its requests are clamped to fill the L2C or below.
    pub fn set_l2_prefetcher(&mut self, core: usize, prefetcher: Box<dyn Prefetcher>) {
        self.cores[core].l2_prefetcher = Some(prefetcher);
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Moves the sink's requests into the bounded prefetch queue, optionally
    /// clamping L1-targeted requests to the L2 (for L2-attached prefetchers).
    fn enqueue_sink(
        queue: &mut VecDeque<PrefetchRequest>,
        cap: usize,
        sink: &RequestSink,
        clamp_to_l2: bool,
        dropped_queue_full: &mut u64,
    ) {
        for mut req in sink.iter() {
            if clamp_to_l2 && req.fill_level == FillLevel::L1 {
                req.fill_level = FillLevel::L2;
            }
            if queue.len() >= cap {
                *dropped_queue_full += 1;
            } else {
                queue.push_back(req);
            }
        }
    }

    /// Advances core `idx` by one cycle. Returns whether the core made any
    /// observable progress (retired, dispatched, received fills/evictions,
    /// emitted or issued prefetches) — the signal the event-driven cycle
    /// skipping uses to detect fully stalled cycles.
    fn step_core(&mut self, idx: usize, measuring: bool, target: u64) -> bool {
        let now = self.cycle;
        let cfg = self.cfg;
        let pc = &mut self.cores[idx];
        let mut dropped_queue_full = 0u64;
        let mut progress = false;

        // 1. Deliver fill / eviction notifications to the L1 prefetcher.
        for fill in self.hierarchy.take_l1_fills(idx) {
            pc.l1_prefetcher.on_fill(fill.block, fill.was_prefetch);
            progress = true;
        }
        for block in self.hierarchy.take_l1_evictions(idx) {
            pc.l1_prefetcher.on_evict(block);
            progress = true;
        }

        // 2. Give the prefetcher its cycle tick (e.g. Gaze's Prefetch Buffer
        //    drains a few blocks per cycle).
        pc.sink.clear();
        pc.l1_prefetcher.tick(&mut pc.sink);
        if !pc.sink.is_empty() {
            progress = true;
            Self::enqueue_sink(
                &mut pc.prefetch_queue,
                cfg.prefetch_queue,
                &pc.sink,
                false,
                &mut dropped_queue_full,
            );
        }

        // 3. Retire.
        if pc.core.retire(now) > 0 {
            progress = true;
        }
        if measuring && pc.measured_cycles.is_none() {
            let after = pc.core.retired_instructions();
            pc.measured_instructions = after;
            if after >= target {
                pc.measured_cycles = Some(now.saturating_sub(pc.measure_start_cycle).max(1));
            }
        }

        // 4. Dispatch up to `width` instructions.
        for _ in 0..cfg.core.width {
            if !pc.core.can_dispatch() {
                break;
            }
            if pc.pending.is_none() {
                let rec = pc.reader.next_record();
                pc.pending = Some((rec, rec.non_mem_before));
            }
            let (rec, remaining) = pc.pending.expect("pending record present");
            if remaining > 0 {
                pc.core.dispatch_simple(now);
                progress = true;
                pc.pending = Some((rec, remaining - 1));
                continue;
            }
            // The memory instruction itself. Loads stall at dispatch when the
            // load queue or the L1D demand MSHRs are exhausted, which is what
            // bounds the memory-level parallelism a single core can expose.
            if !rec.is_store
                && (!pc.core.can_dispatch_load(now)
                    || self.hierarchy.l1_demand_occupancy(idx) >= cfg.l1d.mshrs)
            {
                break;
            }
            pc.instr_id += 1;
            let access = DemandAccess {
                pc: rec.pc,
                addr: rec.addr,
                kind: if rec.is_store {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                },
                instr_id: pc.instr_id,
            };
            let result = self
                .hierarchy
                .demand_access(idx, rec.addr.block(), rec.is_store, now);
            pc.sink.clear();
            pc.l1_prefetcher
                .on_access(&access, result.l1_hit, &mut pc.sink);
            Self::enqueue_sink(
                &mut pc.prefetch_queue,
                cfg.prefetch_queue,
                &pc.sink,
                false,
                &mut dropped_queue_full,
            );
            if !result.l1_hit {
                if let Some(l2pf) = pc.l2_prefetcher.as_mut() {
                    let l2_hit = matches!(result.served_by, crate::hierarchy::HitLevel::L2);
                    pc.sink.clear();
                    l2pf.on_access(&access, l2_hit, &mut pc.sink);
                    // L2 prefetcher requests are clamped to fill the L2 or below.
                    Self::enqueue_sink(
                        &mut pc.prefetch_queue,
                        cfg.prefetch_queue,
                        &pc.sink,
                        true,
                        &mut dropped_queue_full,
                    );
                }
            }
            if rec.is_store {
                pc.core.dispatch_simple(now);
            } else {
                pc.core.dispatch_load(result.complete_at);
            }
            progress = true;
            pc.pending = None;
        }

        // 5. Issue prefetches from the queue, after demands so that demand
        //    misses get MSHRs first. A prefetch that cannot get a fill-buffer
        //    slot is rotated to the back of the queue (it is not lost and it
        //    does not block requests behind it targeting other levels). A
        //    cycle that only rotates refused requests has no observable
        //    effect, so it does not count as progress — [`next_issue_cycle`]
        //    can then fast-forward to the first cycle an attempt could land.
        for _ in 0..cfg.prefetch_issue_width {
            let Some(req) = pc.prefetch_queue.pop_front() else {
                break;
            };
            if self.hierarchy.issue_prefetch(idx, req, now)
                == crate::hierarchy::PrefetchOutcome::MshrFull
            {
                pc.prefetch_queue.push_back(req);
            } else {
                progress = true;
            }
        }
        if dropped_queue_full > 0 {
            self.hierarchy
                .note_prefetch_queue_drops(idx, dropped_queue_full);
        }
        progress
    }

    /// The earliest future cycle at which anything can *issue*, observed
    /// from a cycle in which nothing progressed: the nearest pending cache
    /// fill, ROB-entry completion, prefetcher tick readiness
    /// ([`Prefetcher::next_ready_at`]) or prefetch-queue retry that could
    /// consume a request — whichever comes first. Every cycle strictly
    /// before the returned one is a provable no-op (queued prefetches only
    /// rotate), so the clock may jump there. `None` means no event is
    /// scheduled at all (the simulation is wedged).
    fn next_issue_cycle(&self) -> Option<u64> {
        let now = self.cycle;
        let mut next = self.hierarchy.next_fill_at().unwrap_or(u64::MAX);
        for pc in &self.cores {
            if let Some(t) = pc.core.next_event_at(now) {
                next = next.min(t);
            }
            if let Some(t) = pc.l1_prefetcher.next_ready_at(now) {
                next = next.min(t.max(now + 1));
            }
            if let Some(t) = pc.l2_prefetcher.as_ref().and_then(|p| p.next_ready_at(now)) {
                next = next.min(t.max(now + 1));
            }
        }
        // Queued prefetches: request at queue position `p` gets its next
        // issue attempt at `now + 1 + p / width` (each futile cycle attempts
        // and rotates exactly `width` requests), but the attempt can only
        // consume the request once its hierarchy-side refusal clears.
        let width = self.cfg.prefetch_issue_width;
        for (idx, pc) in self.cores.iter().enumerate() {
            for (pos, req) in pc.prefetch_queue.iter().enumerate() {
                let Some(batch) = pos.checked_div(width) else {
                    // Zero issue width: queued requests can never issue.
                    break;
                };
                let attempt = now + 1 + batch as u64;
                if attempt >= next {
                    // Attempt times grow with the position; nothing
                    // further back can beat the current bound.
                    break;
                }
                let clear = self.hierarchy.prefetch_block_clear_at(idx, req, now);
                next = next.min(attempt.max(clear));
            }
        }
        (next != u64::MAX).then_some(next)
    }

    /// Reproduces the prefetch-queue rotation that `elided` consecutive
    /// futile cycles would have performed, so a fast-forwarded run attempts
    /// requests in exactly the order the stepped run would. Each futile
    /// cycle pops `width` requests and pushes every one back (all attempts
    /// are refused on futile cycles by construction), i.e. rotates the
    /// queue left by `width mod len`.
    fn replay_queue_rotation(&mut self, elided: u64) {
        let width = self.cfg.prefetch_issue_width as u64;
        for pc in &mut self.cores {
            let len = pc.prefetch_queue.len() as u64;
            if len == 0 || width == 0 {
                continue;
            }
            let rot = ((elided % len) * (width % len)) % len;
            pc.prefetch_queue.rotate_left(rot as usize);
        }
    }

    fn run_phase(&mut self, instructions_per_core: u64, measuring: bool) {
        for pc in &mut self.cores {
            pc.core.reset_retired();
            pc.measured_cycles = None;
            pc.measure_start_cycle = self.cycle;
            pc.measured_instructions = 0;
        }
        let deadline = self.cycle + instructions_per_core.max(1) * DEADLOCK_CYCLES_PER_INSTR;
        loop {
            let all_done = self
                .cores
                .iter()
                .all(|pc| pc.core.retired_instructions() >= instructions_per_core);
            if all_done {
                break;
            }
            assert!(
                self.cycle < deadline,
                "simulation wedged: no forward progress"
            );
            // Apply any cache fills that completed by this cycle so that
            // MSHRs free and stalled cores can make progress even on cycles
            // where they issue no new requests.
            self.hierarchy.advance_to(self.cycle);
            let mut any_progress = false;
            for idx in 0..self.cores.len() {
                any_progress |= self.step_core(idx, measuring, instructions_per_core);
            }
            // Event-driven cycle skipping: when every core is fully stalled
            // (typically on DRAM) and every queued prefetch is provably
            // refused until then, fast-forward straight to the next issue
            // opportunity — fill completion, ROB wake-up, prefetcher tick
            // readiness or MSHR/backlog retry — instead of spinning. The
            // elided cycles' only effect, prefetch-queue rotation, is
            // replayed so issue order stays bit-identical.
            if self.cycle_skip && !any_progress {
                match self.next_issue_cycle() {
                    Some(next) if next > self.cycle => {
                        let elided = next - self.cycle - 1;
                        if elided > 0 {
                            self.replay_queue_rotation(elided);
                        }
                        self.cycles_skipped += next - self.cycle;
                        self.cycle = next;
                        continue;
                    }
                    Some(_) => {}
                    None => {
                        // Nothing will ever happen again: jump to the deadline
                        // so the wedge assertion above reports it. This is a
                        // failure path, accounted apart from recovered idle
                        // cycles (`cycles_skipped` feeds perf metrics).
                        self.cycles_wedged += deadline - self.cycle;
                        self.cycle = deadline;
                        continue;
                    }
                }
            }
            self.cycles_stepped += 1;
            self.cycle += 1;
        }
        if measuring {
            // Any core that reached the target exactly at the final cycle.
            for pc in &mut self.cores {
                if pc.measured_cycles.is_none() {
                    pc.measured_instructions = pc.core.retired_instructions();
                    pc.measured_cycles =
                        Some(self.cycle.saturating_sub(pc.measure_start_cycle).max(1));
                }
            }
        }
    }

    /// Runs `warmup` instructions per core with statistics disabled, then
    /// `measured` instructions per core with statistics enabled, and returns
    /// the per-core report.
    pub fn run(&mut self, warmup: u64, measured: u64) -> SimReport {
        assert!(measured > 0, "measured instruction budget must be positive");
        if warmup > 0 {
            self.hierarchy.set_stats_enabled(false);
            self.run_phase(warmup, false);
        }
        self.hierarchy.set_stats_enabled(true);
        self.hierarchy.reset_stats();
        self.run_phase(measured, true);
        self.hierarchy.finalize();
        self.publish_cycle_metrics();

        let cores = self
            .cores
            .iter()
            .enumerate()
            .map(|(idx, pc)| {
                let h = self.hierarchy.stats(idx);
                CoreStats {
                    // Report the instructions actually retired when the
                    // measurement window closed; padding this up to the
                    // budget would silently inflate IPC for under-retiring
                    // cores.
                    instructions: pc.measured_instructions,
                    cycles: pc.measured_cycles.unwrap_or(1),
                    l1d: h.l1d,
                    l2c: h.l2c,
                    llc: h.llc,
                    prefetch: h.prefetch,
                }
            })
            .collect();
        SimReport { cores }
    }

    /// Cycles advanced one at a time since construction.
    pub fn cycles_stepped(&self) -> u64 {
        self.cycles_stepped
    }

    /// Cycles fast-forwarded over by event-driven skipping since
    /// construction. Wedge-deadline jumps are excluded (see
    /// [`cycles_wedged`](Self::cycles_wedged)).
    pub fn cycles_skipped(&self) -> u64 {
        self.cycles_skipped
    }

    /// Cycles jumped over solely to reach the wedge deadline (a run that
    /// increments this panics immediately afterwards; the counter exists so
    /// tests and diagnostics can tell a wedge jump from recovered idle
    /// time).
    pub fn cycles_wedged(&self) -> u64 {
        self.cycles_wedged
    }

    /// Folds cycle counts accumulated since the previous publication into
    /// the process-global metrics (`gaze_sim_cycles_*_total`). Two atomic
    /// adds per `run`, nothing per cycle — and purely observational, so
    /// simulation output stays bit-exact. Wedge jumps are never published:
    /// they would inflate the skip totals right before the wedge panic.
    fn publish_cycle_metrics(&mut self) {
        use std::sync::OnceLock;
        static CYCLES: OnceLock<(gaze_obs::metrics::Counter, gaze_obs::metrics::Counter)> =
            OnceLock::new();
        let (stepped, skipped) = CYCLES.get_or_init(|| {
            let reg = gaze_obs::metrics::registry();
            (
                reg.counter(
                    "gaze_sim_cycles_stepped_total",
                    "Simulator cycles advanced one at a time",
                ),
                reg.counter(
                    "gaze_sim_cycles_skipped_total",
                    "Simulator cycles fast-forwarded by event-driven skipping",
                ),
            )
        });
        stepped.add(self.cycles_stepped - self.published_stepped);
        skipped.add(self.cycles_skipped - self.published_skipped);
        self.published_stepped = self.cycles_stepped;
        self.published_skipped = self.cycles_skipped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;
    use prefetch_common::prefetcher::NullPrefetcher;

    /// A deliberately aggressive prefetcher used only in tests: prefetches
    /// the next `degree` sequential blocks on every access, the first
    /// `l1_degree` of them into the L1D and the remainder into the L2C
    /// (the same fill-level split real spatial prefetchers use).
    struct NextLine {
        degree: usize,
        l1_degree: usize,
    }

    impl Prefetcher for NextLine {
        fn name(&self) -> &str {
            "test-next-line"
        }

        fn on_access(&mut self, access: &DemandAccess, _hit: bool, sink: &mut RequestSink) {
            for d in 1..=self.degree as i64 {
                let block = access.block().offset_by(d);
                if d <= self.l1_degree as i64 {
                    sink.push(PrefetchRequest::to_l1(block));
                } else {
                    sink.push(PrefetchRequest::to_l2(block));
                }
            }
        }

        fn storage_bits(&self) -> u64 {
            0
        }
    }

    fn streaming_trace(records: usize) -> Trace {
        let recs = (0..records)
            .map(|i| TraceRecord::load(0x400000, 0x10_0000 + i as u64 * 64, 4))
            .collect();
        Trace::new("stream", recs)
    }

    fn random_ish_trace(records: usize) -> Trace {
        // Deterministic pseudo-random walk over a 16 MB footprint.
        let mut state = 0x12345678u64;
        let recs = (0..records)
            .map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let addr = (state >> 16) % (16 * 1024 * 1024);
                TraceRecord::load(0x400100 + (i as u64 % 7) * 4, addr & !63, 2)
            })
            .collect();
        Trace::new("random", recs)
    }

    #[test]
    fn system_runs_and_reports_ipc() {
        let trace = streaming_trace(2000);
        let mut sys = System::single_core(
            SimConfig::paper_single_core(),
            &trace,
            Box::new(NullPrefetcher::new()),
        );
        let report = sys.run(1_000, 5_000);
        assert_eq!(report.cores.len(), 1);
        let ipc = report.cores[0].ipc();
        assert!(ipc > 0.05 && ipc <= 4.0, "IPC {ipc} out of plausible range");
        assert!(report.cores[0].l1d.demand_accesses > 0);
    }

    #[test]
    fn prefetching_improves_streaming_ipc() {
        let trace = streaming_trace(4000);
        let cfg = SimConfig::paper_single_core();
        let base =
            System::single_core(cfg, &trace, Box::new(NullPrefetcher::new())).run(2_000, 20_000);
        let pref = System::single_core(
            cfg,
            &trace,
            Box::new(NextLine {
                degree: 16,
                l1_degree: 4,
            }),
        )
        .run(2_000, 20_000);
        let speedup = pref.speedup_over(&base);
        assert!(
            speedup > 1.05,
            "next-line prefetching should speed up streaming, got {speedup:.3}"
        );
        assert!(pref.cores[0].overall_accuracy() > 0.8);
    }

    #[test]
    fn useless_prefetches_hurt_accuracy_on_random_accesses() {
        let trace = random_ish_trace(3000);
        let cfg = SimConfig::paper_single_core();
        let pref = System::single_core(
            cfg,
            &trace,
            Box::new(NextLine {
                degree: 4,
                l1_degree: 4,
            }),
        )
        .run(1_000, 10_000);
        assert!(
            pref.cores[0].overall_accuracy() < 0.5,
            "random accesses should make next-line inaccurate, got {:.3}",
            pref.cores[0].overall_accuracy()
        );
    }

    #[test]
    fn multicore_run_produces_per_core_stats() {
        let t0 = streaming_trace(1500);
        let t1 = random_ish_trace(1500);
        let cfg = SimConfig::paper_multi_core(2);
        let mut sys = System::new(
            cfg,
            vec![&t0 as &dyn TraceSource, &t1],
            vec![
                Box::new(NullPrefetcher::new()),
                Box::new(NullPrefetcher::new()),
            ],
        );
        let report = sys.run(500, 4_000);
        assert_eq!(report.cores.len(), 2);
        assert!(report.cores.iter().all(|c| c.instructions >= 4_000));
        assert!(report.cores.iter().all(|c| c.cycles > 0));
    }

    #[test]
    fn l2_prefetcher_requests_are_clamped_to_l2() {
        let trace = streaming_trace(2000);
        let cfg = SimConfig::paper_single_core();
        let mut sys = System::single_core(cfg, &trace, Box::new(NullPrefetcher::new()));
        sys.set_l2_prefetcher(
            0,
            Box::new(NextLine {
                degree: 2,
                l1_degree: 2,
            }),
        );
        let report = sys.run(500, 8_000);
        // The L2 prefetcher produced fills at the L2, never at the L1.
        assert_eq!(report.cores[0].l1d.prefetch_fills, 0);
        assert!(report.cores[0].l2c.prefetch_fills > 0);
    }

    #[test]
    #[should_panic(expected = "one trace per core")]
    fn trace_count_must_match_cores() {
        let trace = streaming_trace(10);
        let _ = System::new(
            SimConfig::paper_multi_core(2),
            vec![&trace as &dyn TraceSource],
            vec![Box::new(NullPrefetcher::new())],
        );
    }

    /// Cycle skipping must be exact: every metric of every report equals the
    /// unskipped simulation, across prefetching styles and core counts.
    #[test]
    fn cycle_skipping_is_bit_identical_to_unskipped_simulation() {
        let stream = streaming_trace(3000);
        let random = random_ish_trace(3000);
        let single = SimConfig::paper_single_core();

        fn run_pair<'t>(mk: &dyn Fn() -> System<'t>) -> (SimReport, SimReport, u64, u64) {
            let mut skipped = mk();
            let mut unskipped = mk();
            unskipped.set_cycle_skip(false);
            let a = skipped.run(1_000, 8_000);
            let b = unskipped.run(1_000, 8_000);
            (a, b, skipped.cycle(), unskipped.cycle())
        }

        // No prefetching: maximal stall windows, maximal skipping.
        let (a, b, ca, cb) =
            run_pair(&|| System::single_core(single, &random, Box::new(NullPrefetcher::new())));
        assert_eq!(a, b, "null-prefetcher reports must match");
        assert_eq!(ca, cb, "final cycle counts must match");

        // An eager prefetcher exercising the queue/tick interaction.
        let (a, b, ca, cb) = run_pair(&|| {
            System::single_core(
                single,
                &stream,
                Box::new(NextLine {
                    degree: 8,
                    l1_degree: 4,
                }),
            )
        });
        assert_eq!(a, b, "prefetching reports must match");
        assert_eq!(ca, cb);

        // Multi-core with heterogeneous traces.
        let (a, b, ca, cb) = run_pair(&|| {
            System::new(
                SimConfig::paper_multi_core(2),
                vec![&stream as &dyn TraceSource, &random],
                vec![
                    Box::new(NullPrefetcher::new()),
                    Box::new(NextLine {
                        degree: 4,
                        l1_degree: 4,
                    }),
                ],
            )
        });
        assert_eq!(a, b, "multi-core reports must match");
        assert_eq!(ca, cb);
    }

    /// The queue-aware case: an eager prefetcher keeps the prefetch queue
    /// non-empty through the stall windows, where the pre-queue-aware skip
    /// disengaged entirely. The fast-forward must both engage and stay
    /// bit-exact.
    #[test]
    fn queue_aware_skip_is_exact_and_engages_under_prefetch_pressure() {
        let random = random_ish_trace(3000);
        let mk = || {
            System::single_core(
                SimConfig::paper_single_core(),
                &random,
                Box::new(NextLine {
                    degree: 16,
                    l1_degree: 8,
                }),
            )
        };
        let mut skipped = mk();
        let mut unskipped = mk();
        unskipped.set_cycle_skip(false);
        let a = skipped.run(1_000, 8_000);
        let b = unskipped.run(1_000, 8_000);
        assert_eq!(a, b, "queue-pressure reports must match");
        assert_eq!(skipped.cycle(), unskipped.cycle());
        assert!(
            skipped.cycles_skipped() > 0,
            "skip must engage on a memory-bound prefetcher-enabled run"
        );
        assert_eq!(unskipped.cycles_skipped(), 0);
        // Skipped + stepped must account for exactly the cycles the
        // unskipped run stepped through.
        assert_eq!(
            skipped.cycles_stepped() + skipped.cycles_skipped(),
            unskipped.cycles_stepped()
        );
    }

    /// Jumping to the deadline because nothing is scheduled is a failure
    /// path; it must not be booked as recovered idle time.
    #[test]
    fn wedge_deadline_jump_is_not_counted_as_skipped() {
        let trace = streaming_trace(10);
        let mut cfg = SimConfig::paper_single_core();
        cfg.core.width = 0; // nothing can ever dispatch or retire
        let mut sys = System::single_core(cfg, &trace, Box::new(NullPrefetcher::new()));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sys.run(0, 100)));
        assert!(result.is_err(), "a width-0 core must wedge");
        assert_eq!(sys.cycles_skipped(), 0, "wedge jump booked as skipped");
        assert!(sys.cycles_wedged() > 0);
    }

    #[test]
    fn cycle_skipping_advances_fewer_loop_iterations_but_same_final_cycle() {
        // Sanity check that skipping actually engages on a memory-bound
        // trace: the final cycle count is identical, and the run completes
        // (the speedup itself is covered by the bench harness).
        let random = random_ish_trace(2000);
        let mut sys = System::single_core(
            SimConfig::paper_single_core(),
            &random,
            Box::new(NullPrefetcher::new()),
        );
        let report = sys.run(500, 4_000);
        assert!(report.cores[0].cycles > 0);
        assert!(report.cores[0].instructions >= 4_000);
    }
}
