//! Run parameters: instruction budgets, scale presets and stable
//! fingerprints.
//!
//! [`RunParams`] couples the per-core instruction budgets of one simulation
//! with the [`SimConfig`] it runs under. It lives in `sim-core` (rather
//! than the experiment harness) so that every layer that needs to *key* on
//! a run — the baseline memoization, the persistent results store, the
//! `trace-pack` CLI deriving record counts from a scale — shares one
//! definition and one stable [`fingerprint`](RunParams::fingerprint).
//!
//! Fingerprints are FNV-1a over every field (floats via their IEEE-754 bit
//! patterns), so they are a pure function of the parameter values: stable
//! across processes, platforms and re-runs. They key the on-disk results
//! store, so changing what is hashed (or how) is a format-affecting change
//! — bump the store version when touching [`Fnv1a`].

use crate::config::SimConfig;

/// Instruction budgets and system configuration of one simulation.
#[derive(Debug, Clone, Copy)]
pub struct RunParams {
    /// Warm-up instructions per core (statistics disabled).
    pub warmup: u64,
    /// Measured instructions per core.
    pub measured: u64,
    /// System configuration.
    pub config: SimConfig,
}

impl RunParams {
    /// A short run suitable for unit/integration tests.
    pub fn test() -> Self {
        RunParams {
            warmup: 5_000,
            measured: 20_000,
            config: SimConfig::paper_single_core(),
        }
    }

    /// The quick CI scale: large enough for every figure to show the
    /// paper's trends, small enough that the full set regenerates in a
    /// couple of minutes.
    pub fn quick() -> Self {
        RunParams {
            warmup: 10_000,
            measured: 60_000,
            config: SimConfig::paper_single_core(),
        }
    }

    /// The default experiment scale used by the benches: large enough for
    /// patterns to be learned and contention to appear, small enough that the
    /// full figure set regenerates in minutes rather than days.
    pub fn experiment() -> Self {
        RunParams {
            warmup: 50_000,
            measured: 200_000,
            config: SimConfig::paper_single_core(),
        }
    }

    /// The paper's own per-core budgets (200M warm-up + 200M measured). Only
    /// practical as an overnight run on the parallel engine
    /// (`gaze-experiments --paper`).
    pub fn paper_scale() -> Self {
        RunParams {
            warmup: 200_000_000,
            measured: 200_000_000,
            config: SimConfig::paper_single_core(),
        }
    }

    /// Looks up a named scale preset (`test`, `quick`, `bench`/`full`/
    /// `experiment`, or `paper`). The names match `GAZE_SCALE` and the
    /// `--scale` flags of the CLIs.
    pub fn named_scale(name: &str) -> Option<Self> {
        match name {
            "test" => Some(Self::test()),
            "quick" => Some(Self::quick()),
            "bench" | "full" | "experiment" => Some(Self::experiment()),
            "paper" => Some(Self::paper_scale()),
            _ => None,
        }
    }

    /// Returns a copy scaled to `cores` cores (LLC and DRAM scale per
    /// Table II).
    pub fn with_cores(mut self, cores: usize) -> Self {
        let mtps = self.config.dram.mtps;
        let llc = self.config.llc_per_core;
        let l2 = self.config.l2c;
        self.config = SimConfig::paper_multi_core(cores);
        self.config.dram.mtps = mtps;
        self.config.llc_per_core = llc;
        self.config.l2c = l2;
        self
    }

    /// Returns a copy with a different system configuration.
    pub fn with_config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Stable FNV-1a fingerprint of the budgets and the full configuration.
    ///
    /// Two `RunParams` fingerprint identically exactly when every budget and
    /// configuration field is equal, so the fingerprint is a valid cache /
    /// store key for deterministic simulations.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.mix(self.warmup);
        h.mix(self.measured);
        self.config.fingerprint_into(&mut h);
        h.finish()
    }
}

/// Trace length (memory records) generated for a given measured-instruction
/// budget: enough records that the trace does not wrap too often.
pub fn records_for(params: &RunParams) -> usize {
    // Roughly one memory access every 6-10 instructions in the generators.
    ((params.warmup + params.measured) / 5).max(4_000) as usize
}

/// Stable FNV-1a fingerprint of a multi-core trace *mix*: folds the core
/// count, then every core's trace fingerprint in core order.
///
/// This keys the results store's multi-core (v2) records. Folding the
/// count first means a one-core mix never fingerprints identically to its
/// lone trace's own [`source_fingerprint`](crate::trace::source_fingerprint),
/// so single-run and mix key spaces cannot alias; folding in core order
/// means `[a, b]` and `[b, a]` are distinct mixes (core placement matters
/// under shared-LLC contention).
pub fn mix_fingerprint(core_trace_fingerprints: &[u64]) -> u64 {
    let mut h = Fnv1a::new();
    h.mix(core_trace_fingerprints.len() as u64);
    for &fp in core_trace_fingerprints {
        h.mix(fp);
    }
    h.finish()
}

/// An incremental FNV-1a hasher over `u64` words (the same constants as the
/// trace-stream fingerprint in [`crate::trace`]).
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Starts a hash at the FNV offset basis.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Folds one word into the hash.
    pub fn mix(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
    }

    /// Folds an IEEE-754 double in by bit pattern.
    pub fn mix_f64(&mut self, v: f64) {
        self.mix(v.to_bits());
    }

    /// The accumulated hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_value_sensitive() {
        let a = RunParams::quick();
        let b = RunParams::quick();
        assert_eq!(a.fingerprint(), b.fingerprint());

        let mut c = RunParams::quick();
        c.measured += 1;
        assert_ne!(a.fingerprint(), c.fingerprint());

        let d = RunParams::quick().with_config(SimConfig::paper_single_core().with_l2_kb(128));
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn scale_presets_resolve_by_name() {
        assert_eq!(
            RunParams::named_scale("quick").map(|p| p.measured),
            Some(60_000)
        );
        assert_eq!(
            RunParams::named_scale("paper").map(|p| p.warmup),
            Some(200_000_000)
        );
        assert_eq!(
            RunParams::named_scale("bench").map(|p| p.measured),
            RunParams::named_scale("full").map(|p| p.measured),
        );
        assert!(RunParams::named_scale("nope").is_none());
    }

    #[test]
    fn records_for_scales_with_budgets() {
        assert_eq!(records_for(&RunParams::quick()), 14_000);
        assert_eq!(records_for(&RunParams::test()), 5_000);
        // Tiny budgets are floored so generators always have room to work.
        let tiny = RunParams {
            warmup: 10,
            measured: 10,
            ..RunParams::test()
        };
        assert_eq!(records_for(&tiny), 4_000);
    }

    #[test]
    fn multi_core_params_fingerprint_differently() {
        let one = RunParams::test();
        let four = RunParams::test().with_cores(4);
        assert_ne!(one.fingerprint(), four.fingerprint());
    }

    #[test]
    fn mix_fingerprint_is_order_count_and_content_sensitive() {
        let (a, b) = (0x1111u64, 0x2222u64);
        assert_eq!(mix_fingerprint(&[a, b]), mix_fingerprint(&[a, b]));
        assert_ne!(mix_fingerprint(&[a, b]), mix_fingerprint(&[b, a]));
        assert_ne!(mix_fingerprint(&[a]), mix_fingerprint(&[a, a]));
        // A one-core mix is not the trace fingerprint itself.
        assert_ne!(mix_fingerprint(&[a]), a);
    }
}
