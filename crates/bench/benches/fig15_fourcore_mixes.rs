//! Regenerates Fig. 15 (four-core heterogeneous mixes) of the Gaze (HPCA 2025) evaluation.
//!
//! Scale is controlled by the `GAZE_SCALE` environment variable
//! (`quick` = default, `bench`/`full` = every workload at the larger
//! instruction budget).

use gaze_sim::experiments::{run_experiment, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env();
    for table in run_experiment("fig15", &scale) {
        println!("{table}");
    }
}
