//! Microbenchmarks of prefetcher training/prediction throughput and of the
//! simulator itself (plain timing loops — the build environment has no
//! criterion).
//!
//! These complement the figure-regeneration benches: they measure how fast
//! each prefetcher's hardware model processes accesses (relevant because the
//! paper argues Gaze's tables are single-cycle accessible and small), and how
//! many instructions per second the trace-driven simulator achieves.

use std::time::Instant;

use prefetch_common::access::DemandAccess;
use prefetch_common::sink::RequestSink;

use gaze_sim::factory::make_prefetcher;
use gaze_sim::runner::{simulate_core, RunParams};
use workloads::build_workload;

fn prefetcher_training_throughput() {
    let trace = build_workload("fotonik3d_s", 20_000);
    let accesses: Vec<DemandAccess> = trace
        .records()
        .iter()
        .map(|r| DemandAccess {
            pc: r.pc,
            addr: r.addr,
            kind: prefetch_common::access::AccessKind::Load,
            instr_id: 0,
        })
        .collect();
    println!(
        "== prefetcher_training (accesses/s over {} accesses x 5 reps) ==",
        accesses.len()
    );
    for name in ["gaze", "pmp", "bingo", "vberti", "spp-ppf", "ip-stride"] {
        const REPS: usize = 5;
        let mut issued = 0usize;
        let mut sink = RequestSink::new();
        let start = Instant::now();
        for _ in 0..REPS {
            let mut p = make_prefetcher(name);
            for a in &accesses {
                sink.clear();
                p.on_access(a, false, &mut sink);
                issued += sink.len();
                sink.clear();
                p.tick(&mut sink);
                issued += sink.len();
            }
        }
        let secs = start.elapsed().as_secs_f64();
        let rate = (accesses.len() * REPS) as f64 / secs.max(1e-9);
        println!("{name:10} {rate:>12.0} accesses/s  ({issued} requests issued)");
    }
}

fn simulator_throughput() {
    let trace = build_workload("bwaves_s", 20_000);
    let params = RunParams {
        warmup: 2_000,
        measured: 20_000,
        ..RunParams::test()
    };
    const REPS: usize = 10;
    let start = Instant::now();
    let mut ipc = 0.0;
    for _ in 0..REPS {
        ipc = simulate_core(&trace, make_prefetcher("gaze"), None, &params).ipc();
    }
    let secs = start.elapsed().as_secs_f64();
    let instr = (params.warmup + params.measured) as f64 * REPS as f64;
    println!("== simulator ==");
    println!(
        "single_core_20k_instructions: {:.2}M sim-instructions/s (last IPC {ipc:.3})",
        instr / secs.max(1e-9) / 1e6
    );
}

fn main() {
    prefetcher_training_throughput();
    simulator_throughput();
}
