//! Criterion microbenchmarks of prefetcher training/prediction throughput and
//! of the simulator itself.
//!
//! These complement the figure-regeneration benches: they measure how fast
//! each prefetcher's hardware model processes accesses (relevant because the
//! paper argues Gaze's tables are single-cycle accessible and small), and how
//! many instructions per second the trace-driven simulator achieves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prefetch_common::access::DemandAccess;

use gaze_sim::factory::make_prefetcher;
use gaze_sim::runner::{run_single_boxed, RunParams};
use workloads::build_workload;

fn prefetcher_training_throughput(c: &mut Criterion) {
    let trace = build_workload("fotonik3d_s", 20_000);
    let accesses: Vec<DemandAccess> = trace
        .records()
        .iter()
        .map(|r| DemandAccess { pc: r.pc, addr: r.addr, kind: prefetch_common::access::AccessKind::Load, instr_id: 0 })
        .collect();
    let mut group = c.benchmark_group("prefetcher_training");
    for name in ["gaze", "pmp", "bingo", "vberti", "spp-ppf", "ip-stride"] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, name| {
            b.iter(|| {
                let mut p = make_prefetcher(name);
                let mut issued = 0usize;
                for a in &accesses {
                    issued += p.on_access(a, false).len();
                    issued += p.tick().len();
                }
                issued
            });
        });
    }
    group.finish();
}

fn simulator_throughput(c: &mut Criterion) {
    let trace = build_workload("bwaves_s", 20_000);
    let params = RunParams { warmup: 2_000, measured: 20_000, ..RunParams::test() };
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.bench_function("single_core_20k_instructions", |b| {
        b.iter(|| run_single_boxed(&trace, make_prefetcher("gaze"), &params))
    });
    group.finish();
}

criterion_group!(benches, prefetcher_training_throughput, simulator_throughput);
criterion_main!(benches);
