//! `sim-perf` — the simulator performance harness.
//!
//! Measures wall time and simulated-instructions-per-second for a set of
//! figure regenerations and writes `BENCH_simperf.json`, establishing the
//! perf trajectory of the engine across PRs.
//!
//! ```text
//! cargo run --release -p bench --bin sim-perf -- [figures...] \
//!     [--out PATH] [--compare-serial] [--full]
//! ```
//!
//! * `figures...` — experiment names (default: `fig06 fig09 fig11`; `fig06`
//!   covers the fig06–08 nine-prefetcher comparison),
//! * `--out PATH` — output path (default `BENCH_simperf.json`),
//! * `--compare-serial` — additionally re-run each figure with every engine
//!   optimization disabled (one worker, no cycle skipping, no baseline
//!   memoization) and report the speedup. The serial pass re-executes the
//!   whole harness as a child process so the disabling env vars apply from
//!   process start and no cached baselines leak across modes,
//! * `--reference SECONDS` — record an externally measured wall time for the
//!   same figure set (e.g. the pre-optimization engine from an earlier
//!   commit) and the speedup over it; `--reference-note TEXT` documents its
//!   provenance (the JSON distinguishes this hand-supplied number from the
//!   harness-measured `serial_wall_seconds`),
//! * `--full` — use the `bench` scale instead of `quick`.

use std::time::Instant;

use bench::{render_simperf_json, time_experiment, ExperimentScale, FigureTiming};
use gaze_sim::experiments::experiment_names;

/// Marker env var for the child process of `--compare-serial`: run the named
/// figure once, print the wall seconds, exit.
const SERIAL_CHILD: &str = "GAZE_SIMPERF_SERIAL_CHILD";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let compare_serial = args.iter().any(|a| a == "--compare-serial");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_simperf.json".to_string());
    let reference_seconds: Option<f64> = args
        .iter()
        .position(|a| a == "--reference")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());
    let reference_note: Option<String> = args
        .iter()
        .position(|a| a == "--reference-note")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let mut figures: Vec<String> = Vec::new();
    let mut skip_next = false;
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--out" || a == "--reference" || a == "--reference-note" {
            skip_next = true;
        } else if !a.starts_with("--") {
            figures.push(a.clone());
        }
    }
    if figures.is_empty() {
        figures = vec![
            "fig06".to_string(),
            "fig09".to_string(),
            "fig11".to_string(),
        ];
    }
    for f in &figures {
        if !experiment_names().contains(&f.as_str()) {
            eprintln!(
                "unknown experiment '{f}'; available: {:?}",
                experiment_names()
            );
            std::process::exit(2);
        }
    }

    let scale_label = if full { "bench" } else { "quick" };
    let scale = if full {
        ExperimentScale::default_bench()
    } else {
        ExperimentScale::quick()
    };

    // Child mode: one serial figure, print seconds, exit.
    if let Ok(figure) = std::env::var(SERIAL_CHILD) {
        let start = Instant::now();
        let _ = bench::run_experiment(&figure, &scale);
        println!("{:.6}", start.elapsed().as_secs_f64());
        return;
    }

    let mut timings: Vec<FigureTiming> = Vec::new();
    for figure in &figures {
        eprintln!("sim-perf: timing {figure} (scale {scale_label}) ...");
        let mut timing = time_experiment(figure, &scale);
        if compare_serial {
            eprintln!("sim-perf: timing {figure} serial reference ...");
            timing.serial_wall_seconds = Some(run_serial_reference(figure, full));
        }
        eprintln!(
            "sim-perf: {figure}: {:.3}s, {:.2}M sim-instructions/s{}",
            timing.wall_seconds,
            timing.sim_ips() / 1e6,
            timing
                .speedup_vs_serial()
                .map(|s| format!(", {s:.2}x vs serial"))
                .unwrap_or_default()
        );
        timings.push(timing);
    }

    let doc = render_simperf_json(
        scale_label,
        gaze_sim::worker_count(),
        &timings,
        reference_seconds,
        reference_note.as_deref(),
    );
    std::fs::write(&out_path, &doc).unwrap_or_else(|e| {
        eprintln!("sim-perf: cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    print!("{doc}");
    eprintln!("sim-perf: wrote {out_path}");
}

/// Times `figure` in a child process with every engine optimization off.
fn run_serial_reference(figure: &str, full: bool) -> f64 {
    let exe = std::env::current_exe().expect("current exe path");
    let mut cmd = std::process::Command::new(exe);
    if full {
        cmd.arg("--full");
    }
    let output = cmd
        .env(SERIAL_CHILD, figure)
        .env("GAZE_THREADS", "1")
        .env("GAZE_CYCLE_SKIP", "0")
        .env("GAZE_BASELINE_CACHE", "0")
        .output()
        .expect("spawn serial reference child");
    assert!(
        output.status.success(),
        "serial reference for {figure} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8_lossy(&output.stdout)
        .lines()
        .last()
        .and_then(|l| l.trim().parse::<f64>().ok())
        .expect("serial child prints wall seconds")
}
