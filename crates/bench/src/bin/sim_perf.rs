//! `sim-perf` — the simulator characterization harness.
//!
//! Measures wall time, simulated-instructions-per-second and cycle-skip
//! engagement for a grid of (figure × thread count × engine mode) cells and
//! appends one run record to the `BENCH_simperf.json` history (schema v2,
//! `docs/PERF.md`), establishing the perf trajectory of the engine across
//! PRs.
//!
//! ```text
//! cargo run --release -p bench --bin sim-perf -- [figures...] \
//!     [--out PATH] [--threads LIST] [--compare-serial] [--warm] [--full] \
//!     [--gate PATH] [--gate-tolerance F] [--no-append] \
//!     [--reference SECONDS] [--reference-note TEXT]
//! ```
//!
//! * `figures...` — experiment names (default: `fig06 fig09 fig11`; `fig06`
//!   covers the fig06–08 nine-prefetcher comparison),
//! * `--out PATH` — history path (default `BENCH_simperf.json`); the run is
//!   appended to an existing v2 document (`--no-append` starts it fresh),
//! * `--threads LIST` — comma-separated worker-thread counts for the
//!   `parallel` mode cells (default: `1,<host parallelism>` deduplicated),
//! * `--compare-serial` — add a `serial` cell per figure: every engine
//!   optimization disabled (one worker, no cycle skipping, no baseline
//!   memoization),
//! * `--warm` — add `cold` + `warm` cells per figure: the full engine
//!   writing through to an empty results store, then the same store re-read
//!   (a fully warm store simulates nothing),
//! * `--full` — use the `bench` scale instead of `quick`,
//! * `--gate PATH` — regression gate: compare each figure's best `parallel`
//!   throughput against the latest run recorded in the v2 document at PATH
//!   and exit non-zero if it fell below `--gate-tolerance` (default 0.3)
//!   times the reference,
//! * `--reference SECONDS` / `--reference-note TEXT` — record an externally
//!   measured wall time for the same figure set and its provenance.
//!
//! Every cell runs in its own child process so the engine-mode environment
//! variables apply from process start and no cached baselines, results-store
//! handles or thread pools leak across cells.

use std::time::Instant;

use bench::{
    append_run, latest_parallel_ips, render_run_json, time_experiment, CellResult, ExperimentScale,
};
use gaze_sim::experiments::experiment_names;

/// Marker env var for cell child processes: run the named figure once,
/// print the measured cell on stdout, exit.
const CELL_CHILD: &str = "GAZE_SIMPERF_CHILD";

struct Options {
    figures: Vec<String>,
    threads: Vec<usize>,
    compare_serial: bool,
    warm: bool,
    full: bool,
    out_path: String,
    append: bool,
    gate_path: Option<String>,
    gate_tolerance: f64,
    reference_seconds: Option<f64>,
    reference_note: Option<String>,
}

fn parse_args(args: &[String]) -> Options {
    fn value_of(args: &[String], flag: &str) -> Option<String> {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| {
                    // gaze-lint: allow(eprintln) -- CLI usage error: bare stderr line is the interface
                    eprintln!("sim-perf: {flag} requires a value");
                    std::process::exit(2);
                })
                .clone()
        })
    }
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut threads: Vec<usize> = value_of(args, "--threads")
        .map(|list| {
            list.split(',')
                .map(|t| {
                    t.trim().parse().unwrap_or_else(|_| {
                        // gaze-lint: allow(eprintln) -- CLI usage error: bare stderr line is the interface
                        eprintln!("sim-perf: bad thread count '{t}'");
                        std::process::exit(2);
                    })
                })
                .collect()
        })
        .unwrap_or_else(|| vec![1, host]);
    threads.retain(|&t| t > 0);
    threads.dedup();
    assert!(!threads.is_empty(), "--threads needs at least one count");

    const VALUE_FLAGS: [&str; 6] = [
        "--out",
        "--threads",
        "--gate",
        "--gate-tolerance",
        "--reference",
        "--reference-note",
    ];
    let mut figures: Vec<String> = Vec::new();
    let mut skip_next = false;
    for a in args {
        if skip_next {
            skip_next = false;
        } else if VALUE_FLAGS.contains(&a.as_str()) {
            skip_next = true;
        } else if !a.starts_with("--") {
            figures.push(a.clone());
        }
    }
    if figures.is_empty() {
        figures = vec!["fig06".into(), "fig09".into(), "fig11".into()];
    }
    for f in &figures {
        if !experiment_names().contains(&f.as_str()) {
            // gaze-lint: allow(eprintln) -- CLI usage error: bare stderr line is the interface
            eprintln!(
                "unknown experiment '{f}'; available: {:?}",
                experiment_names()
            );
            std::process::exit(2);
        }
    }

    Options {
        figures,
        threads,
        compare_serial: args.iter().any(|a| a == "--compare-serial"),
        warm: args.iter().any(|a| a == "--warm"),
        full: args.iter().any(|a| a == "--full"),
        out_path: value_of(args, "--out").unwrap_or_else(|| "BENCH_simperf.json".into()),
        append: !args.iter().any(|a| a == "--no-append"),
        gate_path: value_of(args, "--gate"),
        gate_tolerance: value_of(args, "--gate-tolerance")
            .map(|v| {
                v.parse().unwrap_or_else(|_| {
                    // gaze-lint: allow(eprintln) -- CLI usage error: bare stderr line is the interface
                    eprintln!("sim-perf: bad tolerance '{v}'");
                    std::process::exit(2);
                })
            })
            .unwrap_or(0.3),
        reference_seconds: value_of(args, "--reference").and_then(|v| v.parse().ok()),
        reference_note: value_of(args, "--reference-note"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args);
    let scale_label = if opts.full { "bench" } else { "quick" };
    let scale = if opts.full {
        ExperimentScale::default_bench()
    } else {
        ExperimentScale::quick()
    };

    // Child mode: one figure under whatever engine env the parent set,
    // stats printed on the last stdout line.
    if let Ok(figure) = std::env::var(CELL_CHILD) {
        let cell = time_experiment(&figure, &scale);
        println!(
            "cell wall_seconds={:.6} simulated_instructions={} cycles_stepped={} cycles_skipped={}",
            cell.wall_seconds,
            cell.simulated_instructions,
            cell.cycles_stepped,
            cell.cycles_skipped
        );
        return;
    }

    let mut cells: Vec<CellResult> = Vec::new();
    let start = Instant::now();
    for figure in &opts.figures {
        for &threads in &opts.threads {
            cells.push(run_cell(figure, "parallel", threads, &opts, None));
        }
        if opts.compare_serial {
            cells.push(run_cell(figure, "serial", 1, &opts, None));
        }
        if opts.warm {
            let store = tmp_store_dir(figure);
            let threads = opts.threads.iter().copied().max().unwrap_or(1);
            cells.push(run_cell(figure, "cold", threads, &opts, Some(&store)));
            let warm = run_cell(figure, "warm", threads, &opts, Some(&store));
            if warm.simulated_instructions > 0 {
                gaze_obs::log::warn(
                    "sim-perf",
                    "warm cell still simulated instructions (store not fully warm)",
                    &[
                        ("figure", &figure),
                        ("instructions", &warm.simulated_instructions),
                    ],
                );
            }
            cells.push(warm);
            let _ = std::fs::remove_dir_all(&store);
        }
    }
    gaze_obs::log::info(
        "sim-perf",
        "all cells measured",
        &[
            ("cells", &cells.len()),
            (
                "wall_seconds",
                &format!("{:.1}", start.elapsed().as_secs_f64()),
            ),
        ],
    );

    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let run = render_run_json(
        scale_label,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        unix_time,
        &cells,
        opts.reference_seconds,
        opts.reference_note.as_deref(),
    );
    let existing = if opts.append {
        std::fs::read_to_string(&opts.out_path).ok()
    } else {
        None
    };
    let doc = append_run(existing.as_deref(), &run);
    std::fs::write(&opts.out_path, &doc).unwrap_or_else(|e| {
        gaze_obs::log::error(
            "sim-perf",
            "cannot write history",
            &[("path", &opts.out_path), ("error", &e)],
        );
        std::process::exit(1);
    });
    println!("{run}");
    gaze_obs::log::info("sim-perf", "wrote history", &[("path", &opts.out_path)]);

    if let Some(gate_path) = &opts.gate_path {
        gate(gate_path, opts.gate_tolerance, scale_label, &cells);
    }
}

/// Regression gate: each figure's best parallel throughput this run must be
/// at least `tolerance` times the latest value recorded in the reference
/// history. A figure absent from the reference passes (first measurement).
fn gate(gate_path: &str, tolerance: f64, scale_label: &str, cells: &[CellResult]) {
    let reference = std::fs::read_to_string(gate_path).unwrap_or_else(|e| {
        gaze_obs::log::error(
            "sim-perf",
            "cannot read gate reference",
            &[("path", &gate_path), ("error", &e)],
        );
        std::process::exit(1);
    });
    let mut failed = false;
    let figures: Vec<&str> = {
        let mut f: Vec<&str> = cells.iter().map(|c| c.figure.as_str()).collect();
        f.dedup();
        f
    };
    for figure in figures {
        let measured = cells
            .iter()
            .filter(|c| c.figure == figure && c.mode == "parallel")
            .map(CellResult::sim_ips)
            .fold(0.0f64, f64::max);
        match latest_parallel_ips(&reference, figure, scale_label) {
            Some(reference_ips) => {
                let floor = reference_ips * tolerance;
                let ok = measured >= floor;
                gaze_obs::log::info(
                    "sim-perf",
                    "gate verdict",
                    &[
                        ("figure", &figure),
                        ("measured_ips", &format!("{measured:.0}")),
                        ("reference_ips", &format!("{reference_ips:.0}")),
                        ("floor", &format!("{floor:.0}")),
                        ("verdict", &if ok { "ok" } else { "REGRESSION" }),
                    ],
                );
                failed |= !ok;
            }
            None => gaze_obs::log::warn(
                "sim-perf",
                "gate has no reference at this scale, skipping figure",
                &[("figure", &figure), ("scale", &scale_label)],
            ),
        }
    }
    if failed {
        gaze_obs::log::error(
            "sim-perf",
            "regression gate FAILED",
            &[("tolerance", &tolerance)],
        );
        std::process::exit(1);
    }
    gaze_obs::log::info(
        "sim-perf",
        "regression gate passed",
        &[("tolerance", &tolerance)],
    );
}

/// Times `figure` in a child process under the given engine mode.
fn run_cell(
    figure: &str,
    mode: &'static str,
    threads: usize,
    opts: &Options,
    store_dir: Option<&std::path::Path>,
) -> CellResult {
    gaze_obs::log::info(
        "sim-perf",
        "cell start",
        &[("figure", &figure), ("mode", &mode), ("threads", &threads)],
    );
    let exe = std::env::current_exe().expect("current exe path");
    let mut cmd = std::process::Command::new(exe);
    if opts.full {
        cmd.arg("--full");
    }
    // A clean engine environment per cell, whatever the parent inherited.
    for var in [
        "GAZE_THREADS",
        "GAZE_CYCLE_SKIP",
        "GAZE_BASELINE_CACHE",
        "GAZE_RESULTS_DIR",
    ] {
        cmd.env_remove(var);
    }
    cmd.env(CELL_CHILD, figure)
        .env("GAZE_THREADS", threads.to_string());
    if mode == "serial" {
        cmd.env("GAZE_THREADS", "1")
            .env("GAZE_CYCLE_SKIP", "0")
            .env("GAZE_BASELINE_CACHE", "0");
    }
    if let Some(dir) = store_dir {
        cmd.env("GAZE_RESULTS_DIR", dir);
    }
    let output = cmd.output().expect("spawn cell child");
    assert!(
        output.status.success(),
        "{mode} cell for {figure} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stats = stdout
        .lines()
        .rev()
        .find(|l| l.starts_with("cell "))
        .expect("cell child prints stats line");
    let field = |name: &str| -> f64 {
        stats
            .split_whitespace()
            .find_map(|kv| kv.strip_prefix(&format!("{name}=")))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("cell stats missing {name}: {stats}"))
    };
    let cell = CellResult {
        figure: figure.to_string(),
        mode,
        threads,
        wall_seconds: field("wall_seconds"),
        simulated_instructions: field("simulated_instructions") as u64,
        cycles_stepped: field("cycles_stepped") as u64,
        cycles_skipped: field("cycles_skipped") as u64,
    };
    gaze_obs::log::info(
        "sim-perf",
        "cell done",
        &[
            ("figure", &figure),
            ("mode", &mode),
            ("threads", &threads),
            ("wall_seconds", &format!("{:.3}", cell.wall_seconds)),
            ("sim_mips", &format!("{:.2}", cell.sim_ips() / 1e6)),
            (
                "skipped_pct",
                &format!("{:.1}", cell.skipped_fraction() * 100.0),
            ),
        ],
    );
    cell
}

/// A fresh per-figure results-store directory under the system temp dir.
fn tmp_store_dir(figure: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gaze-simperf-store-{figure}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp store dir");
    dir
}
