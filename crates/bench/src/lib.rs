//! Benchmark harness crate.
//!
//! The figure-regeneration targets live under `benches/` (plain
//! `harness = false` binaries — the environment has no criterion):
//!
//! * `fig01_*` … `fig18_*`, `table1_*`, `table4_*` — regenerate the
//!   corresponding figure/table of the paper by calling
//!   [`gaze_sim::experiments::run_experiment`] and printing the resulting
//!   tables (scale controlled by the `GAZE_SCALE` environment variable;
//!   set `GAZE_TRACE_DIR` to stream packed GZT traces from disk instead
//!   of generating workloads in memory — see `docs/TRACES.md`),
//! * `micro_prefetcher_throughput` — microbenchmarks of prefetcher model
//!   throughput and simulator speed.
//!
//! The `sim-perf` binary (`cargo run --release -p bench --bin sim-perf`)
//! measures wall time and simulated-instructions-per-second per figure and
//! writes `BENCH_simperf.json`; `--compare-serial` additionally re-runs each
//! figure with every engine optimization disabled (one worker thread, no
//! cycle skipping, no baseline memoization) to report the speedup.

use std::time::Instant;

/// Re-export of the experiment registry for convenience in scripts.
pub use gaze_sim::experiments::{experiment_names, run_experiment, ExperimentScale};

/// One timed figure regeneration.
#[derive(Debug, Clone)]
pub struct FigureTiming {
    /// Experiment name (e.g. `fig06`).
    pub name: String,
    /// Wall-clock seconds of the optimized run.
    pub wall_seconds: f64,
    /// Instructions simulated during the optimized run.
    pub simulated_instructions: u64,
    /// Wall-clock seconds of the all-optimizations-off run, if measured.
    pub serial_wall_seconds: Option<f64>,
}

impl FigureTiming {
    /// Simulated instructions per wall-clock second.
    pub fn sim_ips(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.simulated_instructions as f64 / self.wall_seconds
        }
    }

    /// Speedup of the optimized engine over the serial reference, if the
    /// reference was measured.
    pub fn speedup_vs_serial(&self) -> Option<f64> {
        self.serial_wall_seconds.map(|s| {
            if self.wall_seconds > 0.0 {
                s / self.wall_seconds
            } else {
                0.0
            }
        })
    }
}

/// Runs one experiment and times it. The tables themselves are discarded —
/// this measures the engine, not the figures.
pub fn time_experiment(name: &str, scale: &ExperimentScale) -> FigureTiming {
    let instructions_before = gaze_sim::runner::simulated_instructions();
    let start = Instant::now();
    let tables = run_experiment(name, scale);
    let wall_seconds = start.elapsed().as_secs_f64();
    assert!(!tables.is_empty(), "experiment {name} produced no tables");
    FigureTiming {
        name: name.to_string(),
        wall_seconds,
        simulated_instructions: gaze_sim::runner::simulated_instructions() - instructions_before,
        serial_wall_seconds: None,
    }
}

/// Serializes timings into the `BENCH_simperf.json` document (hand-rolled:
/// no serde in the build environment; every emitted value is numeric or a
/// known-safe identifier, so no string escaping is needed).
///
/// `reference_seconds`, when given, records an externally measured wall time
/// for the same figure set (e.g. the pre-optimization serial engine) and the
/// speedup of this run over it; `reference_note` documents where that number
/// came from (it is NOT reproducible from this binary alone, unlike
/// `serial_wall_seconds` which the harness measures itself).
pub fn render_simperf_json(
    scale_label: &str,
    threads: usize,
    timings: &[FigureTiming],
    reference_seconds: Option<f64>,
    reference_note: Option<&str>,
) -> String {
    let total: f64 = timings.iter().map(|t| t.wall_seconds).sum();
    let total_serial: f64 = timings.iter().filter_map(|t| t.serial_wall_seconds).sum();
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"gaze-simperf-v1\",\n");
    out.push_str(&format!("  \"scale\": \"{scale_label}\",\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    out.push_str("  \"figures\": [\n");
    for (i, t) in timings.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"name\": \"{}\", ", t.name));
        out.push_str(&format!("\"wall_seconds\": {:.6}, ", t.wall_seconds));
        out.push_str(&format!(
            "\"simulated_instructions\": {}, ",
            t.simulated_instructions
        ));
        out.push_str(&format!(
            "\"sim_instructions_per_second\": {:.1}",
            t.sim_ips()
        ));
        if let Some(serial) = t.serial_wall_seconds {
            out.push_str(&format!(", \"serial_wall_seconds\": {serial:.6}"));
            out.push_str(&format!(
                ", \"speedup_vs_serial\": {:.3}",
                t.speedup_vs_serial().unwrap_or(0.0)
            ));
        }
        out.push('}');
        out.push_str(if i + 1 < timings.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"total_wall_seconds\": {total:.6}"));
    if total_serial > 0.0 {
        out.push_str(&format!(
            ",\n  \"total_serial_wall_seconds\": {total_serial:.6}"
        ));
        out.push_str(&format!(
            ",\n  \"total_speedup_vs_serial\": {:.3}",
            if total > 0.0 {
                total_serial / total
            } else {
                0.0
            }
        ));
    }
    if let Some(reference) = reference_seconds {
        out.push_str(&format!(",\n  \"reference_wall_seconds\": {reference:.6}"));
        out.push_str(&format!(
            ",\n  \"speedup_vs_reference\": {:.3}",
            if total > 0.0 { reference / total } else { 0.0 }
        ));
        if let Some(note) = reference_note {
            let escaped = note.replace('\\', "\\\\").replace('"', "\\\"");
            out.push_str(&format!(",\n  \"reference_note\": \"{escaped}\""));
        }
    }
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_computes_throughput() {
        let t = FigureTiming {
            name: "fig99".into(),
            wall_seconds: 2.0,
            simulated_instructions: 4_000_000,
            serial_wall_seconds: Some(8.0),
        };
        assert!((t.sim_ips() - 2_000_000.0).abs() < 1e-6);
        assert!((t.speedup_vs_serial().unwrap() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn json_document_is_well_formed_enough() {
        let t = FigureTiming {
            name: "fig06".into(),
            wall_seconds: 1.5,
            simulated_instructions: 100,
            serial_wall_seconds: None,
        };
        let doc = render_simperf_json("quick", 4, &[t], Some(6.0), Some("measured elsewhere"));
        assert!(doc.starts_with('{') && doc.trim_end().ends_with('}'));
        assert!(doc.contains("\"gaze-simperf-v1\""));
        assert!(doc.contains("\"fig06\""));
        assert!(doc.contains("\"speedup_vs_reference\": 4.000"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn time_experiment_runs_a_real_table() {
        let scale = ExperimentScale {
            params: gaze_sim::RunParams {
                warmup: 500,
                measured: 2_000,
                ..gaze_sim::RunParams::test()
            },
            workloads_per_suite: 1,
        };
        let t = time_experiment("table1", &scale);
        assert_eq!(t.name, "table1");
        assert!(t.wall_seconds >= 0.0);
    }
}
