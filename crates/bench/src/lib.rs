//! Benchmark harness crate.
//!
//! The actual targets live under `benches/`:
//!
//! * `fig01_*` … `fig18_*`, `table1_*`, `table4_*` — regenerate the
//!   corresponding figure/table of the paper by calling
//!   [`gaze_sim::experiments::run_experiment`] and printing the resulting
//!   tables (scale controlled by the `GAZE_SCALE` environment variable),
//! * `micro_prefetcher_throughput` — Criterion microbenchmarks of prefetcher
//!   model throughput and simulator speed.
//!
//! Run everything with `cargo bench --workspace`, or a single figure with
//! `cargo bench -p bench --bench fig06_speedup`.

/// Re-export of the experiment registry for convenience in scripts.
pub use gaze_sim::experiments::{experiment_names, run_experiment, ExperimentScale};
