//! Benchmark harness crate.
//!
//! The figure-regeneration targets live under `benches/` (plain
//! `harness = false` binaries — the environment has no criterion):
//!
//! * `fig01_*` … `fig18_*`, `table1_*`, `table4_*` — regenerate the
//!   corresponding figure/table of the paper by calling
//!   [`gaze_sim::experiments::run_experiment`] and printing the resulting
//!   tables (scale controlled by the `GAZE_SCALE` environment variable;
//!   set `GAZE_TRACE_DIR` to stream packed GZT traces from disk instead
//!   of generating workloads in memory — see `docs/TRACES.md`),
//! * `micro_prefetcher_throughput` — microbenchmarks of prefetcher model
//!   throughput and simulator speed.
//!
//! The `sim-perf` binary (`cargo run --release -p bench --bin sim-perf`)
//! is the characterization harness: it measures every requested
//! (figure × thread count × engine mode) cell in its own child process and
//! appends one run record to the `BENCH_simperf.json` history (schema v2,
//! see `docs/PERF.md`), so the file accumulates the engine's perf
//! trajectory across PRs instead of holding a single overwritten snapshot.

use std::time::Instant;

/// Re-export of the experiment registry for convenience in scripts.
pub use gaze_sim::experiments::{experiment_names, run_experiment, ExperimentScale};

/// One measured (figure × threads × mode) characterization cell.
///
/// `mode` is one of:
/// * `"parallel"` — the full engine (thread pool, cycle skipping, baseline
///   memoization), no results store,
/// * `"serial"` — every engine optimization off (one worker, no cycle
///   skipping, no baseline memoization),
/// * `"cold"` — the full engine writing through to an empty results store,
/// * `"warm"` — the same store re-read: every result served without
///   simulating (`simulated_instructions` is 0 when the store is fully warm).
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Experiment name (e.g. `fig06`).
    pub figure: String,
    /// Engine mode (see type docs).
    pub mode: &'static str,
    /// Worker threads the cell ran with (`GAZE_THREADS`).
    pub threads: usize,
    /// Wall-clock seconds of the run.
    pub wall_seconds: f64,
    /// Instructions simulated during the run.
    pub simulated_instructions: u64,
    /// Simulator cycles advanced one at a time.
    pub cycles_stepped: u64,
    /// Simulator cycles fast-forwarded by event-driven skipping.
    pub cycles_skipped: u64,
}

impl CellResult {
    /// Simulated instructions per wall-clock second.
    pub fn sim_ips(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.simulated_instructions as f64 / self.wall_seconds
        }
    }

    /// Fraction of all advanced cycles that were skipped rather than
    /// stepped — the skip-engagement figure of merit.
    pub fn skipped_fraction(&self) -> f64 {
        let total = self.cycles_stepped + self.cycles_skipped;
        if total == 0 {
            0.0
        } else {
            self.cycles_skipped as f64 / total as f64
        }
    }

    /// Renders this cell as one line of the v2 JSON document.
    fn render(&self) -> String {
        format!(
            "{{\"figure\": \"{}\", \"mode\": \"{}\", \"threads\": {}, \
             \"wall_seconds\": {:.6}, \"simulated_instructions\": {}, \
             \"sim_instructions_per_second\": {:.1}, \"cycles_stepped\": {}, \
             \"cycles_skipped\": {}, \"skipped_fraction\": {:.4}}}",
            self.figure,
            self.mode,
            self.threads,
            self.wall_seconds,
            self.simulated_instructions,
            self.sim_ips(),
            self.cycles_stepped,
            self.cycles_skipped,
            self.skipped_fraction(),
        )
    }
}

/// Measures one experiment in-process: wall seconds, simulated
/// instructions, and the stepped/skipped cycle deltas from the
/// process-global metrics. The tables themselves are discarded — this
/// measures the engine, not the figures.
pub fn time_experiment(name: &str, scale: &ExperimentScale) -> CellResult {
    let (stepped_ctr, skipped_ctr) = cycle_counters();
    let instructions_before = gaze_sim::runner::simulated_instructions();
    let stepped_before = stepped_ctr.get();
    let skipped_before = skipped_ctr.get();
    let start = Instant::now();
    let tables = run_experiment(name, scale);
    let wall_seconds = start.elapsed().as_secs_f64();
    assert!(!tables.is_empty(), "experiment {name} produced no tables");
    CellResult {
        figure: name.to_string(),
        mode: "parallel",
        threads: gaze_sim::worker_count(),
        wall_seconds,
        simulated_instructions: gaze_sim::runner::simulated_instructions() - instructions_before,
        cycles_stepped: stepped_ctr.get() - stepped_before,
        cycles_skipped: skipped_ctr.get() - skipped_before,
    }
}

/// The process-global stepped/skipped cycle counters the simulator
/// publishes into (`gaze_sim_cycles_*_total`).
pub fn cycle_counters() -> (gaze_obs::metrics::Counter, gaze_obs::metrics::Counter) {
    let reg = gaze_obs::metrics::registry();
    (
        reg.counter(
            "gaze_sim_cycles_stepped_total",
            "Simulator cycles advanced one at a time",
        ),
        reg.counter(
            "gaze_sim_cycles_skipped_total",
            "Simulator cycles fast-forwarded by event-driven skipping",
        ),
    )
}

/// Renders one run record of the v2 document (hand-rolled: no serde in the
/// build environment; every emitted value is numeric or a known-safe
/// identifier except the reference note, which is escaped).
///
/// `reference_seconds`, when given, records an externally measured wall
/// time for the same figure set (e.g. the pre-optimization serial engine)
/// and `reference_note` documents where that number came from.
pub fn render_run_json(
    scale_label: &str,
    host_parallelism: usize,
    unix_time: u64,
    cells: &[CellResult],
    reference_seconds: Option<f64>,
    reference_note: Option<&str>,
) -> String {
    let total: f64 = cells.iter().map(|c| c.wall_seconds).sum();
    let mut out = String::from("    {\n");
    out.push_str(&format!("      \"unix_time\": {unix_time},\n"));
    out.push_str(&format!("      \"scale\": \"{scale_label}\",\n"));
    out.push_str(&format!(
        "      \"host_parallelism\": {host_parallelism},\n"
    ));
    out.push_str("      \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str("        ");
        out.push_str(&c.render());
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("      ],\n");
    out.push_str(&format!("      \"total_wall_seconds\": {total:.6}"));
    if let Some(reference) = reference_seconds {
        out.push_str(&format!(
            ",\n      \"reference_wall_seconds\": {reference:.6}"
        ));
        if let Some(note) = reference_note {
            let escaped = note.replace('\\', "\\\\").replace('"', "\\\"");
            out.push_str(&format!(",\n      \"reference_note\": \"{escaped}\""));
        }
    }
    out.push_str("\n    }");
    out
}

const V2_HEADER: &str = "{\n  \"schema\": \"gaze-simperf-v2\",\n  \"runs\": [\n";
const V2_FOOTER: &str = "\n  ]\n}\n";

/// Appends a [`render_run_json`] record to an existing v2 document,
/// preserving all prior runs. A missing file, a v1 snapshot, or foreign
/// content starts a fresh history (the old single-snapshot document
/// survives in git history — v1 had no machine-appendable shape).
pub fn append_run(existing: Option<&str>, run: &str) -> String {
    if let Some(doc) = existing {
        if doc.starts_with(V2_HEADER) {
            if let Some(pos) = doc.rfind(V2_FOOTER) {
                let body = &doc[..pos];
                return format!("{body},\n{run}{V2_FOOTER}");
            }
        }
    }
    format!("{V2_HEADER}{run}{V2_FOOTER}")
}

/// Extracts, from the most recent run of a v2 document that has one, the
/// best (max across thread counts) `sim_instructions_per_second` among
/// `mode == "parallel"` cells for `figure` at `scale` — the number the CI
/// regression gate compares against.
pub fn latest_parallel_ips(doc: &str, figure: &str, scale: &str) -> Option<f64> {
    let figure_key = format!("\"figure\": \"{figure}\"");
    let scale_key = format!("\"scale\": \"{scale}\"");
    let mut latest: Option<f64> = None;
    let mut current: Option<f64> = None;
    let mut scale_matches = false;
    for line in doc.lines() {
        let t = line.trim_start();
        if t.starts_with("\"unix_time\"") {
            // New run record: bank the previous one.
            if current.is_some() {
                latest = current.take();
            }
            scale_matches = false;
        } else if t.starts_with("\"scale\"") {
            scale_matches = t.contains(&scale_key);
        } else if scale_matches && t.contains(&figure_key) && t.contains("\"mode\": \"parallel\"") {
            if let Some(ips) = extract_number(t, "\"sim_instructions_per_second\":") {
                current = Some(current.map_or(ips, |c: f64| c.max(ips)));
            }
        }
    }
    current.or(latest)
}

/// Parses the number following `key` on a single JSON line.
fn extract_number(line: &str, key: &str) -> Option<f64> {
    let start = line.find(key)? + key.len();
    let rest = line[start..].trim_start();
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(figure: &str, mode: &'static str, threads: usize, ips_base: f64) -> CellResult {
        CellResult {
            figure: figure.into(),
            mode,
            threads,
            wall_seconds: 2.0,
            simulated_instructions: (ips_base * 2.0) as u64,
            cycles_stepped: 300,
            cycles_skipped: 700,
        }
    }

    #[test]
    fn cell_computes_throughput_and_skip_fraction() {
        let c = cell("fig99", "parallel", 1, 2_000_000.0);
        assert!((c.sim_ips() - 2_000_000.0).abs() < 1e-6);
        assert!((c.skipped_fraction() - 0.7).abs() < 1e-9);
    }

    #[test]
    fn v2_document_appends_and_stays_balanced() {
        let run1 = render_run_json(
            "quick",
            1,
            1_000,
            &[cell("fig06", "parallel", 1, 1_000_000.0)],
            Some(28.0),
            Some("see \"CHANGES.md\""),
        );
        let doc1 = append_run(None, &run1);
        assert!(doc1.starts_with('{') && doc1.ends_with("}\n"));
        assert!(doc1.contains("\"gaze-simperf-v2\""));
        assert_eq!(doc1.matches('{').count(), doc1.matches('}').count());

        let run2 = render_run_json(
            "quick",
            1,
            2_000,
            &[
                cell("fig06", "parallel", 1, 2_000_000.0),
                cell("fig06", "parallel", 2, 1_500_000.0),
                cell("fig06", "serial", 1, 500_000.0),
            ],
            None,
            None,
        );
        let doc2 = append_run(Some(&doc1), &run2);
        assert_eq!(doc2.matches("\"unix_time\"").count(), 2);
        assert!(doc2.contains("\"reference_note\""), "prior runs preserved");
        assert_eq!(doc2.matches('{').count(), doc2.matches('}').count());

        // A v1 snapshot cannot be appended to; the history restarts.
        let doc3 = append_run(Some("{\n  \"schema\": \"gaze-simperf-v1\"\n}\n"), &run1);
        assert_eq!(doc3.matches("\"unix_time\"").count(), 1);
    }

    #[test]
    fn gate_reads_the_latest_matching_run() {
        let run1 = render_run_json(
            "quick",
            1,
            1_000,
            &[cell("fig06", "parallel", 1, 1_000_000.0)],
            None,
            None,
        );
        let run2 = render_run_json(
            "quick",
            1,
            2_000,
            &[
                cell("fig06", "parallel", 1, 2_000_000.0),
                cell("fig06", "parallel", 2, 3_000_000.0),
                cell("fig06", "serial", 1, 9_000_000.0),
                cell("fig09", "parallel", 1, 4_000_000.0),
            ],
            None,
            None,
        );
        let doc = append_run(Some(&append_run(None, &run1)), &run2);
        // Best parallel cell of the latest run, serial cells ignored.
        let ips = latest_parallel_ips(&doc, "fig06", "quick").unwrap();
        assert!((ips - 3_000_000.0).abs() < 1.0);
        let ips = latest_parallel_ips(&doc, "fig09", "quick").unwrap();
        assert!((ips - 4_000_000.0).abs() < 1.0);
        assert!(latest_parallel_ips(&doc, "fig11", "quick").is_none());
        assert!(latest_parallel_ips(&doc, "fig06", "bench").is_none());

        // A latest run without the figure falls back to the previous run.
        let run3 = render_run_json(
            "quick",
            1,
            3_000,
            &[cell("fig09", "parallel", 1, 5_000_000.0)],
            None,
            None,
        );
        let doc = append_run(Some(&doc), &run3);
        let ips = latest_parallel_ips(&doc, "fig06", "quick").unwrap();
        assert!((ips - 3_000_000.0).abs() < 1.0);
    }

    #[test]
    fn time_experiment_runs_a_real_table() {
        let scale = ExperimentScale {
            params: gaze_sim::RunParams {
                warmup: 500,
                measured: 2_000,
                ..gaze_sim::RunParams::test()
            },
            workloads_per_suite: 1,
        };
        let t = time_experiment("table1", &scale);
        assert_eq!(t.figure, "table1");
        assert!(t.wall_seconds >= 0.0);
    }
}
