//! SPP-PPF: the Signature Path Prefetcher (MICRO'16) with Perceptron-based
//! Prefetch Filtering (ISCA'19).
//!
//! SPP compresses the recent delta history of each 4 KB page into a
//! *signature*, looks the signature up in a pattern table that records which
//! delta tends to follow it and with what confidence, and then walks the
//! predicted path ahead ("lookahead"), multiplying confidences as it goes.
//! PPF adds a perceptron that vetoes predicted prefetches whose feature
//! weights (signature, delta, offset) have been associated with useless
//! prefetches in the past.

use prefetch_common::access::DemandAccess;
use prefetch_common::addr::{BlockAddr, RegionGeometry};
use prefetch_common::prefetcher::{Prefetcher, PrefetcherStats};
use prefetch_common::request::PrefetchRequest;
use prefetch_common::sink::RequestSink;
use prefetch_common::table::{SetAssocTable, TableConfig};

/// Configuration of [`SppPpf`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SppConfig {
    /// Signature table entries (per-page signature tracking).
    pub signature_entries: usize,
    /// Pattern table entries (signature -> delta predictions).
    pub pattern_entries: usize,
    /// Delta slots per pattern-table entry.
    pub deltas_per_signature: usize,
    /// Maximum lookahead depth.
    pub max_depth: usize,
    /// Path confidence below which the walk stops.
    pub confidence_threshold: f64,
    /// Path confidence above which fills target the L1 (below: L2).
    pub l1_threshold: f64,
    /// Whether the perceptron filter is active.
    pub use_ppf: bool,
    /// Perceptron weight table size (per feature).
    pub ppf_weights: usize,
}

impl Default for SppConfig {
    fn default() -> Self {
        SppConfig {
            signature_entries: 256,
            pattern_entries: 512,
            deltas_per_signature: 4,
            max_depth: 6,
            confidence_threshold: 0.25,
            l1_threshold: 0.60,
            use_ppf: true,
            ppf_weights: 1024,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct SignatureEntry {
    signature: u16,
    last_offset: usize,
}

#[derive(Debug, Clone)]
struct PatternEntry {
    deltas: Vec<(i64, u32)>,
    total: u32,
}

/// A small perceptron filter over (signature, delta, offset) features.
#[derive(Debug, Clone)]
struct Perceptron {
    weights_sig: Vec<i32>,
    weights_delta: Vec<i32>,
    weights_offset: Vec<i32>,
    threshold: i32,
}

impl Perceptron {
    fn new(size: usize) -> Self {
        Perceptron {
            weights_sig: vec![0; size],
            weights_delta: vec![0; size],
            weights_offset: vec![0; size],
            threshold: -2,
        }
    }

    fn indices(&self, signature: u16, delta: i64, offset: usize) -> (usize, usize, usize) {
        let n = self.weights_sig.len();
        (
            signature as usize % n,
            (delta.unsigned_abs() as usize * 2 + usize::from(delta < 0)) % n,
            offset % n,
        )
    }

    fn score(&self, signature: u16, delta: i64, offset: usize) -> i32 {
        let (a, b, c) = self.indices(signature, delta, offset);
        self.weights_sig[a] + self.weights_delta[b] + self.weights_offset[c]
    }

    fn accepts(&self, signature: u16, delta: i64, offset: usize) -> bool {
        self.score(signature, delta, offset) >= self.threshold
    }

    fn train(&mut self, signature: u16, delta: i64, offset: usize, useful: bool) {
        let (a, b, c) = self.indices(signature, delta, offset);
        let step = if useful { 1 } else { -1 };
        for w in [
            &mut self.weights_sig[a],
            &mut self.weights_delta[b],
            &mut self.weights_offset[c],
        ] {
            *w = (*w + step).clamp(-16, 15);
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct IssuedMeta {
    signature: u16,
    delta: i64,
    offset: usize,
}

/// The SPP-PPF prefetcher.
#[derive(Debug)]
pub struct SppPpf {
    cfg: SppConfig,
    geom: RegionGeometry,
    signatures: SetAssocTable<SignatureEntry>,
    patterns: SetAssocTable<PatternEntry>,
    perceptron: Perceptron,
    /// Issued-prefetch metadata keyed by block (the PPF training lookups run
    /// on every access, so this must not be a linear scan). Each block keeps
    /// a bucket of metas: re-predictions of the same block each train the
    /// perceptron once, exactly like the original flat list did.
    issued: std::collections::HashMap<u64, Vec<IssuedMeta>>,
    issued_len: usize,
    stats: PrefetcherStats,
}

impl SppPpf {
    /// Creates an SPP-PPF prefetcher with the default configuration.
    pub fn new() -> Self {
        Self::with_config(SppConfig::default())
    }

    /// Creates an SPP prefetcher *without* the perceptron filter.
    pub fn without_filter() -> Self {
        Self::with_config(SppConfig {
            use_ppf: false,
            ..SppConfig::default()
        })
    }

    /// Creates an SPP-PPF prefetcher from an explicit configuration.
    pub fn with_config(cfg: SppConfig) -> Self {
        SppPpf {
            geom: RegionGeometry::gaze_default(),
            signatures: SetAssocTable::new(TableConfig::new((cfg.signature_entries / 4).max(1), 4)),
            patterns: SetAssocTable::new(TableConfig::new((cfg.pattern_entries / 4).max(1), 4)),
            perceptron: Perceptron::new(cfg.ppf_weights),
            issued: std::collections::HashMap::new(),
            issued_len: 0,
            stats: PrefetcherStats::default(),
            cfg,
        }
    }

    fn update_signature(signature: u16, delta: i64) -> u16 {
        ((signature << 3) ^ (delta as u16 & 0x3f)) & 0xfff
    }

    fn take_issued(&mut self, block: u64) -> Option<IssuedMeta> {
        let bucket = self.issued.get_mut(&block)?;
        let meta = bucket.pop().expect("issued buckets are never left empty");
        if bucket.is_empty() {
            self.issued.remove(&block);
        }
        self.issued_len -= 1;
        Some(meta)
    }

    fn train_pattern(&mut self, signature: u16, delta: i64) {
        let key = u64::from(signature);
        match self.patterns.get_mut(key, key) {
            Some(p) => {
                p.total += 1;
                match p.deltas.iter_mut().find(|(d, _)| *d == delta) {
                    Some((_, count)) => *count += 1,
                    None => {
                        if p.deltas.len() < self.cfg.deltas_per_signature {
                            p.deltas.push((delta, 1));
                        } else if let Some(weakest) =
                            p.deltas.iter_mut().min_by_key(|(_, count)| *count)
                        {
                            if weakest.1 <= 1 {
                                *weakest = (delta, 1);
                            }
                        }
                    }
                }
                if p.total > 256 {
                    p.total /= 2;
                    for (_, c) in &mut p.deltas {
                        *c /= 2;
                    }
                }
            }
            None => {
                self.patterns.insert(
                    key,
                    key,
                    PatternEntry {
                        deltas: vec![(delta, 1)],
                        total: 1,
                    },
                );
            }
        }
    }
}

impl Default for SppPpf {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for SppPpf {
    fn name(&self) -> &str {
        if self.cfg.use_ppf {
            "spp-ppf"
        } else {
            "spp"
        }
    }

    fn on_access(&mut self, access: &DemandAccess, _cache_hit: bool, sink: &mut RequestSink) {
        if !access.kind.is_load() {
            return;
        }
        self.stats.accesses += 1;
        let block = access.block();
        let page = self.geom.region_of(access.addr).raw();
        let offset = self.geom.offset_of(access.addr);

        // Positive PPF training: a demanded block we prefetched was useful.
        if let Some(meta) = self.take_issued(block.raw()) {
            self.perceptron
                .train(meta.signature, meta.delta, meta.offset, true);
        }

        let (signature, delta) = match self.signatures.get_mut(page, page) {
            Some(entry) => {
                let delta = offset as i64 - entry.last_offset as i64;
                if delta == 0 {
                    return;
                }
                let old = entry.signature;
                entry.signature = Self::update_signature(old, delta);
                entry.last_offset = offset;
                (old, delta)
            }
            None => {
                self.signatures.insert(
                    page,
                    page,
                    SignatureEntry {
                        signature: 0,
                        last_offset: offset,
                    },
                );
                return;
            }
        };
        self.train_pattern(signature, delta);

        // Lookahead walk from the *current* signature.
        let mut issued_now = 0u64;
        let mut sig = Self::update_signature(signature, delta);
        let mut current = block;
        let mut confidence = 1.0f64;
        for _ in 0..self.cfg.max_depth {
            let key = u64::from(sig);
            let Some(p) = self.patterns.get(key, key) else {
                break;
            };
            if p.total == 0 || p.deltas.is_empty() {
                break;
            }
            let Some(&(best_delta, best_count)) = p.deltas.iter().max_by_key(|(_, c)| *c) else {
                break;
            };
            confidence *= f64::from(best_count) / f64::from(p.total.max(1));
            if confidence < self.cfg.confidence_threshold || best_delta == 0 {
                break;
            }
            current = current.offset_by(best_delta);
            let target_offset = (offset as i64 + current.delta_from(block)).rem_euclid(64) as usize;
            let accepted =
                !self.cfg.use_ppf || self.perceptron.accepts(sig, best_delta, target_offset);
            if accepted {
                let req = if confidence >= self.cfg.l1_threshold {
                    PrefetchRequest::to_l1(current)
                } else {
                    PrefetchRequest::to_l2(current)
                };
                sink.push(req);
                issued_now += 1;
                if self.issued_len < 8192 {
                    self.issued
                        .entry(current.raw())
                        .or_default()
                        .push(IssuedMeta {
                            signature: sig,
                            delta: best_delta,
                            offset: target_offset,
                        });
                    self.issued_len += 1;
                }
            }
            sig = Self::update_signature(sig, best_delta);
        }
        self.stats.issued += issued_now;
    }

    fn on_evict(&mut self, block: BlockAddr) {
        // Negative PPF training: an issued prefetch was evicted without use.
        if let Some(meta) = self.take_issued(block.raw()) {
            self.perceptron
                .train(meta.signature, meta.delta, meta.offset, false);
        }
    }

    fn storage_bits(&self) -> u64 {
        // Table IV reports 39.3 KB for the full SPP-PPF configuration.
        let st = self.cfg.signature_entries as u64 * (16 + 12 + 6);
        let pt = self.cfg.pattern_entries as u64
            * (12 + self.cfg.deltas_per_signature as u64 * (7 + 8) + 8);
        let ppf = if self.cfg.use_ppf {
            3 * self.cfg.ppf_weights as u64 * 5
        } else {
            0
        };
        // Plus the large prefetch/reject history tables PPF requires.
        let ppf_history = if self.cfg.use_ppf { 2 * 1024 * 40 } else { 0 };
        st + pt + ppf + ppf_history
    }

    fn stats(&self) -> PrefetcherStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefetch_common::prefetcher::PrefetcherExt;

    fn run(p: &mut SppPpf, pc: u64, addrs: &[u64]) -> Vec<PrefetchRequest> {
        let mut out = Vec::new();
        for &a in addrs {
            out.extend(p.on_access_vec(&DemandAccess::load(pc, a), false));
        }
        out
    }

    #[test]
    fn steady_stride_is_predicted_with_lookahead() {
        let mut p = SppPpf::new();
        let addrs: Vec<u64> = (0..200u64).map(|i| 0x10_0000 + i * 128).collect();
        let reqs = run(&mut p, 0x400, &addrs);
        assert!(!reqs.is_empty());
        // Lookahead should reach more than one delta ahead of the last demand.
        let max = reqs.iter().map(|r| r.block.raw()).max().unwrap();
        let last_demand = (0x10_0000 + 199 * 128) / 64;
        assert!(
            max >= last_demand + 4,
            "lookahead should run ahead (max {max}, demand {last_demand})"
        );
    }

    #[test]
    fn random_accesses_produce_little() {
        let mut p = SppPpf::new();
        let mut state = 7u64;
        let addrs: Vec<u64> = (0..300)
            .map(|_| {
                state = state
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(3037000493);
                (state >> 10) % (64 * 1024 * 1024)
            })
            .collect();
        let reqs = run(&mut p, 0x400, &addrs);
        assert!(
            (reqs.len() as f64) < addrs.len() as f64 * 0.5,
            "random traffic should not trigger confident paths ({} reqs)",
            reqs.len()
        );
    }

    #[test]
    fn ppf_suppresses_repeatedly_useless_prefetches() {
        let mut filtered = SppPpf::new();
        let mut unfiltered = SppPpf::without_filter();
        // Train a stride, then keep evicting every issued prefetch unused so
        // the perceptron learns to reject this context.
        for round in 0..30u64 {
            let base = 0x20_0000 + round * 64 * 64;
            let addrs: Vec<u64> = (0..32u64).map(|i| base + i * 128).collect();
            let reqs_f = run(&mut filtered, 0x400, &addrs);
            let reqs_u = run(&mut unfiltered, 0x400, &addrs);
            for r in &reqs_f {
                filtered.on_evict(r.block);
            }
            for r in &reqs_u {
                unfiltered.on_evict(r.block);
            }
        }
        let test_addrs: Vec<u64> = (0..32u64).map(|i| 0x90_0000 + i * 128).collect();
        let final_f = run(&mut filtered, 0x400, &test_addrs);
        let final_u = run(&mut unfiltered, 0x400, &test_addrs);
        assert!(
            final_f.len() < final_u.len(),
            "the perceptron filter should reject prefetches that were always useless ({} vs {})",
            final_f.len(),
            final_u.len()
        );
    }

    #[test]
    fn storage_is_tens_of_kilobytes_with_ppf() {
        let p = SppPpf::new();
        let kb = p.storage_bits() as f64 / 8.0 / 1024.0;
        assert!(
            kb > 10.0 && kb < 60.0,
            "SPP-PPF storage should be tens of KB, got {kb:.2}"
        );
        let bare = SppPpf::without_filter();
        assert!(bare.storage_bits() < p.storage_bits());
    }
}
