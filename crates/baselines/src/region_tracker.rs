//! Shared spatial-region tracking used by the spatial-pattern baselines
//! (SMS, Bingo, DSPatch, PMP and the Fig. 1 characterization prefetchers).
//!
//! All of these prefetchers share the same front end: active regions are
//! tracked in an accumulation structure, the *trigger* (first) access to a
//! region is the prediction event, and a region's accumulated footprint is
//! learned when the region deactivates (LRU replacement of its tracking entry
//! or eviction of one of its blocks from the cache). They differ only in how
//! the pattern history is indexed, which each prefetcher implements on top of
//! this tracker.

use prefetch_common::addr::{Addr, BlockAddr, RegionGeometry};
use prefetch_common::footprint::Footprint;
use prefetch_common::table::{SetAssocTable, TableConfig};

/// A region currently being tracked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackedRegion {
    /// PC of the trigger access.
    pub trigger_pc: u64,
    /// Offset of the trigger access within the region.
    pub trigger_offset: usize,
    /// Accumulated footprint.
    pub footprint: Footprint,
}

/// The trigger event of a newly activated region: the baselines predict from
/// this (PC, offset, address) context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Activation {
    /// Region number.
    pub region: u64,
    /// Trigger PC.
    pub pc: u64,
    /// Trigger offset within the region.
    pub offset: usize,
}

/// A deactivated region whose footprint is ready for learning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Deactivation {
    /// Region number.
    pub region: u64,
    /// Trigger PC.
    pub pc: u64,
    /// Trigger offset.
    pub offset: usize,
    /// Final footprint.
    pub footprint: Footprint,
}

/// What happened as a consequence of one demand access.
#[derive(Debug, Clone, Default)]
pub struct TrackOutcome {
    /// Set when the access activated a new region (the prediction trigger).
    pub activation: Option<Activation>,
    /// Regions deactivated by LRU replacement during this access.
    pub deactivations: Vec<Deactivation>,
}

/// Region tracker with a bounded number of simultaneously active regions.
#[derive(Debug, Clone)]
pub struct RegionTracker {
    geom: RegionGeometry,
    table: SetAssocTable<TrackedRegion>,
}

impl RegionTracker {
    /// Creates a tracker for regions of `region_size` bytes with `entries`
    /// tracking entries of `ways` associativity.
    pub fn new(region_size: u64, entries: usize, ways: usize) -> Self {
        RegionTracker {
            geom: RegionGeometry::new(region_size, 64),
            table: SetAssocTable::new(TableConfig::new((entries / ways).max(1), ways)),
        }
    }

    /// The region geometry in use.
    pub fn geometry(&self) -> RegionGeometry {
        self.geom
    }

    /// Records a demand access and reports any activation/deactivations.
    pub fn access(&mut self, pc: u64, addr: Addr) -> TrackOutcome {
        let region = self.geom.region_of(addr).raw();
        let offset = self.geom.offset_of(addr);
        let mut outcome = TrackOutcome::default();
        if let Some(entry) = self.table.get_mut(region, region) {
            entry.footprint.set(offset);
            return outcome;
        }
        let mut footprint = Footprint::new(self.geom.blocks_per_region());
        footprint.set(offset);
        let entry = TrackedRegion {
            trigger_pc: pc,
            trigger_offset: offset,
            footprint,
        };
        if let Some((victim_region, victim)) = self.table.insert(region, region, entry) {
            if victim.footprint.population() > 1 {
                outcome.deactivations.push(Deactivation {
                    region: victim_region,
                    pc: victim.trigger_pc,
                    offset: victim.trigger_offset,
                    footprint: victim.footprint,
                });
            }
        }
        outcome.activation = Some(Activation { region, pc, offset });
        outcome
    }

    /// Handles the eviction of `block` from the cache; if its region was
    /// tracked, the region deactivates and its footprint is returned.
    pub fn evict_block(&mut self, block: BlockAddr) -> Option<Deactivation> {
        let region = self.geom.region_of_block(block).raw();
        let entry = self.table.remove(region, region)?;
        if entry.footprint.population() > 1 {
            Some(Deactivation {
                region,
                pc: entry.trigger_pc,
                offset: entry.trigger_offset,
                footprint: entry.footprint,
            })
        } else {
            None
        }
    }

    /// Number of currently tracked regions.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether no region is tracked.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> RegionTracker {
        RegionTracker::new(2048, 64, 8)
    }

    #[test]
    fn first_access_activates_region() {
        let mut t = tracker();
        let out = t.access(0x400, Addr::new(3 * 2048 + 5 * 64));
        let act = out.activation.unwrap();
        assert_eq!(act.region, 3);
        assert_eq!(act.offset, 5);
        assert_eq!(act.pc, 0x400);
        // Subsequent accesses to the same region do not re-activate.
        assert!(t
            .access(0x404, Addr::new(3 * 2048 + 6 * 64))
            .activation
            .is_none());
    }

    #[test]
    fn block_eviction_deactivates_and_reports_footprint() {
        let mut t = tracker();
        t.access(0x400, Addr::new(0));
        t.access(0x404, Addr::new(64));
        t.access(0x408, Addr::new(3 * 64));
        let d = t.evict_block(BlockAddr::new(1)).unwrap();
        assert_eq!(d.footprint.iter_set().collect::<Vec<_>>(), vec![0, 1, 3]);
        assert_eq!(d.offset, 0);
        assert!(t.is_empty());
    }

    #[test]
    fn one_bit_footprints_are_filtered_from_learning() {
        let mut t = tracker();
        t.access(0x400, Addr::new(0));
        assert!(t.evict_block(BlockAddr::new(0)).is_none());
    }

    #[test]
    fn lru_replacement_reports_victim_for_learning() {
        let mut t = RegionTracker::new(2048, 8, 8);
        for region in 0..8u64 {
            t.access(0x1, Addr::new(region * 2048));
            t.access(0x2, Addr::new(region * 2048 + 64));
        }
        let out = t.access(0x3, Addr::new(100 * 2048));
        assert_eq!(out.deactivations.len(), 1);
        assert_eq!(out.deactivations[0].region, 0);
    }

    #[test]
    fn geometry_controls_region_size() {
        let t4k = RegionTracker::new(4096, 64, 8);
        assert_eq!(t4k.geometry().blocks_per_region(), 64);
        assert_eq!(tracker().geometry().blocks_per_region(), 32);
    }
}
