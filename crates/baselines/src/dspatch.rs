//! DSPatch (MICRO'19): Dual Spatial Pattern prefetcher.
//!
//! DSPatch characterizes patterns per trigger *PC* and keeps **two**
//! up-to-date bit patterns per PC: a coverage-biased pattern (`CovP`, the OR
//! of recent footprints) and an accuracy-biased pattern (`AccP`, the AND).
//! The original proposal picks between them based on DRAM bandwidth
//! utilization; this implementation approximates that signal with the
//! prefetcher's own recent accuracy (the fraction of its predictions that
//! were later demanded), switching to the conservative pattern when accuracy
//! drops — the same negative-feedback behaviour at the granularity available
//! to an L1 prefetcher.

use prefetch_common::access::DemandAccess;
use prefetch_common::addr::BlockAddr;
use prefetch_common::footprint::Footprint;
use prefetch_common::prefetcher::{Prefetcher, PrefetcherStats};
use prefetch_common::request::PrefetchRequest;
use prefetch_common::sink::RequestSink;
use prefetch_common::table::{SetAssocTable, TableConfig};

use crate::region_tracker::{Activation, Deactivation, RegionTracker};

/// Configuration of [`DsPatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DsPatchConfig {
    /// Spatial-region size in bytes (2 KB, Table IV).
    pub region_size: u64,
    /// Active-region ("page buffer") tracking entries.
    pub tracker_entries: usize,
    /// Signature-pattern-table entries (256, Table IV).
    pub spt_entries: usize,
    /// Signature-pattern-table associativity.
    pub spt_ways: usize,
}

impl Default for DsPatchConfig {
    fn default() -> Self {
        DsPatchConfig {
            region_size: 2048,
            tracker_entries: 64,
            spt_entries: 256,
            spt_ways: 8,
        }
    }
}

#[derive(Debug, Clone)]
struct DualPattern {
    coverage: Footprint,
    accuracy: Footprint,
    trained: bool,
}

/// The DSPatch prefetcher.
#[derive(Debug)]
pub struct DsPatch {
    cfg: DsPatchConfig,
    tracker: RegionTracker,
    spt: SetAssocTable<DualPattern>,
    stats: PrefetcherStats,
    /// Blocks predicted recently (bounded multiset, keyed by block), used for
    /// the accuracy feedback. A map, not a Vec: the membership test runs on
    /// every access.
    recent_predictions: std::collections::HashMap<u64, u32>,
    recent_prediction_count: usize,
    recent_hits: u64,
    recent_total: u64,
}

impl DsPatch {
    /// Creates a DSPatch prefetcher with the Table IV configuration.
    pub fn new() -> Self {
        Self::with_config(DsPatchConfig::default())
    }

    /// Creates a DSPatch prefetcher from an explicit configuration.
    pub fn with_config(cfg: DsPatchConfig) -> Self {
        DsPatch {
            tracker: RegionTracker::new(cfg.region_size, cfg.tracker_entries, 8),
            spt: SetAssocTable::new(TableConfig::new(
                (cfg.spt_entries / cfg.spt_ways).max(1),
                cfg.spt_ways,
            )),
            stats: PrefetcherStats::default(),
            cfg,
            recent_predictions: std::collections::HashMap::new(),
            recent_prediction_count: 0,
            recent_hits: 0,
            recent_total: 0,
        }
    }

    fn pc_key(pc: u64) -> u64 {
        pc ^ (pc >> 13)
    }

    /// Recent prediction accuracy estimate in `[0, 1]`; optimistic before any
    /// feedback accumulates.
    fn accuracy_estimate(&self) -> f64 {
        if self.recent_total < 32 {
            1.0
        } else {
            self.recent_hits as f64 / self.recent_total as f64
        }
    }

    fn learn(&mut self, d: &Deactivation) {
        self.stats.trainings += 1;
        let key = Self::pc_key(d.pc);
        let anchored = d.footprint.rotate_to_anchor(d.offset);
        match self.spt.get_mut(key, key) {
            Some(entry) => {
                entry.coverage.merge(&anchored);
                entry.accuracy = entry.accuracy.intersect(&anchored);
                entry.trained = true;
            }
            None => {
                self.spt.insert(
                    key,
                    key,
                    DualPattern {
                        coverage: anchored.clone(),
                        accuracy: anchored,
                        trained: true,
                    },
                );
            }
        }
    }

    fn predict(&mut self, a: &Activation, sink: &mut RequestSink) {
        let key = Self::pc_key(a.pc);
        // Accuracy-biased pattern when our own recent accuracy is poor
        // (standing in for the bandwidth-utilization signal).
        let conservative = self.accuracy_estimate() < 0.5;
        let Some(entry) = self.spt.get(key, key) else {
            return;
        };
        if !entry.trained {
            return;
        }
        let pattern = if conservative {
            entry.accuracy.clone()
        } else {
            entry.coverage.clone()
        };
        let geom = self.tracker.geometry();
        let blocks = geom.blocks_per_region();
        let region = prefetch_common::addr::RegionId::new(a.region);
        let mut issued = 0u64;
        for rotated in pattern.iter_set() {
            let offset = (rotated + a.offset) % blocks;
            if offset == a.offset {
                continue;
            }
            let block = geom.block_at(region, offset);
            // Coverage-biased blocks that the accuracy pattern does not agree
            // with are fetched only into the L2.
            let agreed = entry.accuracy.get(rotated);
            let req = if agreed {
                PrefetchRequest::to_l1(block)
            } else {
                PrefetchRequest::to_l2(block)
            };
            sink.push(req);
            issued += 1;
            if self.recent_prediction_count < 4096 {
                *self.recent_predictions.entry(block.raw()).or_insert(0) += 1;
                self.recent_prediction_count += 1;
                self.recent_total += 1;
            }
        }
        self.stats.issued += issued;
    }
}

impl Default for DsPatch {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for DsPatch {
    fn name(&self) -> &str {
        "dspatch"
    }

    fn on_access(&mut self, access: &DemandAccess, _cache_hit: bool, sink: &mut RequestSink) {
        if !access.kind.is_load() {
            return;
        }
        self.stats.accesses += 1;
        if let Some(count) = self.recent_predictions.get_mut(&access.block().raw()) {
            *count -= 1;
            if *count == 0 {
                self.recent_predictions.remove(&access.block().raw());
            }
            self.recent_prediction_count -= 1;
            self.recent_hits += 1;
        }
        let outcome = self.tracker.access(access.pc, access.addr);
        for d in &outcome.deactivations {
            self.learn(d);
        }
        if let Some(a) = &outcome.activation {
            self.predict(a, sink);
        }
    }

    fn on_evict(&mut self, block: BlockAddr) {
        if let Some(d) = self.tracker.evict_block(block) {
            self.learn(&d);
        }
    }

    fn storage_bits(&self) -> u64 {
        let blocks = self.tracker.geometry().blocks_per_region() as u64;
        // SPT: PC tag (16b) + LRU (3b) + two bit patterns; page buffer like SMS's tracker.
        let spt = self.cfg.spt_entries as u64 * (16 + 3 + 2 * blocks);
        let tracker = self.cfg.tracker_entries as u64 * (36 + 3 + 16 + 6 + blocks);
        spt + tracker
    }

    fn stats(&self) -> PrefetcherStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefetch_common::prefetcher::PrefetcherExt;
    use prefetch_common::request::FillLevel;

    fn feed(p: &mut DsPatch, pc: u64, region: u64, offsets: &[usize]) -> Vec<PrefetchRequest> {
        let mut out = Vec::new();
        for &o in offsets {
            out.extend(p.on_access_vec(
                &DemandAccess::load(pc, region * 2048 + o as u64 * 64),
                false,
            ));
        }
        out
    }

    #[test]
    fn per_pc_pattern_is_replayed_rotated_to_trigger() {
        let mut p = DsPatch::new();
        feed(&mut p, 0x400, 1, &[4, 6, 8]);
        p.on_evict(BlockAddr::new(32 + 4));
        // Same PC triggers a new region at a different offset: the learned
        // pattern (+2, +4) is applied relative to the new trigger.
        let reqs = feed(&mut p, 0x400, 9, &[10]);
        let mut offs: Vec<u64> = reqs.iter().map(|r| r.block.raw() - 9 * 32).collect();
        offs.sort_unstable();
        assert_eq!(offs, vec![12, 14]);
    }

    #[test]
    fn accuracy_pattern_is_intersection_of_footprints() {
        let mut p = DsPatch::new();
        feed(&mut p, 0x400, 1, &[0, 2, 4]);
        p.on_evict(BlockAddr::new(32));
        feed(&mut p, 0x400, 2, &[0, 2, 6]);
        p.on_evict(BlockAddr::new(2 * 32));
        // Coverage = {2,4,6}; accuracy = {2} (relative offsets). Agreed blocks
        // go to the L1, the rest to the L2.
        let reqs = feed(&mut p, 0x400, 50, &[0]);
        let l1: Vec<u64> = reqs
            .iter()
            .filter(|r| r.fill_level == FillLevel::L1)
            .map(|r| r.block.raw() - 50 * 32)
            .collect();
        let mut l2: Vec<u64> = reqs
            .iter()
            .filter(|r| r.fill_level == FillLevel::L2)
            .map(|r| r.block.raw() - 50 * 32)
            .collect();
        l2.sort_unstable();
        assert_eq!(l1, vec![2]);
        assert_eq!(l2, vec![4, 6]);
    }

    #[test]
    fn unknown_pc_does_not_prefetch() {
        let mut p = DsPatch::new();
        feed(&mut p, 0x400, 1, &[0, 2, 4]);
        p.on_evict(BlockAddr::new(32));
        assert!(feed(&mut p, 0x999, 9, &[0]).is_empty());
    }

    #[test]
    fn storage_is_a_few_kilobytes() {
        let p = DsPatch::new();
        let kb = p.storage_bits() as f64 / 8.0 / 1024.0;
        assert!(
            kb > 2.0 && kb < 8.0,
            "DSPatch storage should be a few KB, got {kb:.2}"
        );
    }
}
