//! vBerti — a virtual-address, timeliness-aware local-delta prefetcher
//! (Berti, MICRO'22, with the cross-page "vBerti" enhancement evaluated in
//! the Gaze paper).
//!
//! Berti learns, per load PC, which block *deltas* would have been timely:
//! when a block is demanded, it looks at the recent history of accesses made
//! by the same PC and counts which earlier access was far enough in the past
//! to have hidden the fetch latency. Deltas with high confidence are
//! prefetched into the L1D, lower-confidence deltas into the L2C. The
//! virtual-address variant may cross 4 KB page boundaries, restricted to
//! ±4 pages as in the paper's tuned configuration.

use std::collections::VecDeque;

use prefetch_common::access::DemandAccess;
use prefetch_common::addr::BlockAddr;
use prefetch_common::prefetcher::{Prefetcher, PrefetcherStats};
use prefetch_common::request::PrefetchRequest;
use prefetch_common::sink::RequestSink;
use prefetch_common::table::{SetAssocTable, TableConfig};

/// Configuration of [`Berti`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BertiConfig {
    /// Tracked load PCs.
    pub ip_entries: usize,
    /// Candidate deltas kept per PC.
    pub deltas_per_ip: usize,
    /// Per-PC history window used to derive timely deltas.
    pub history_len: usize,
    /// Accesses between confidence re-evaluations.
    pub round_len: u32,
    /// Confidence (fraction of the round a delta covered) for L1 fills.
    pub l1_confidence: f64,
    /// Confidence for L2 fills.
    pub l2_confidence: f64,
    /// Cross-page limit in 4 KB pages per direction (4 = eight-page window).
    pub page_range: i64,
    /// Number of accesses a delta must reach back to be considered timely
    /// (stands in for the measured fetch latency).
    pub timeliness_depth: usize,
}

impl Default for BertiConfig {
    fn default() -> Self {
        BertiConfig {
            ip_entries: 64,
            deltas_per_ip: 8,
            history_len: 16,
            round_len: 32,
            l1_confidence: 0.60,
            l2_confidence: 0.30,
            page_range: 4,
            timeliness_depth: 4,
        }
    }
}

#[derive(Debug, Clone)]
struct DeltaStat {
    delta: i64,
    hits: u32,
}

#[derive(Debug, Clone)]
struct IpEntry {
    history: VecDeque<BlockAddr>,
    deltas: Vec<DeltaStat>,
    round_accesses: u32,
    best: Vec<(i64, f64)>,
}

/// The vBerti prefetcher.
#[derive(Debug)]
pub struct Berti {
    cfg: BertiConfig,
    table: SetAssocTable<IpEntry>,
    stats: PrefetcherStats,
}

impl Berti {
    /// Creates a vBerti prefetcher with the paper's tuned configuration
    /// (eight-page prefetch range).
    pub fn new() -> Self {
        Self::with_config(BertiConfig::default())
    }

    /// Creates a vBerti prefetcher from an explicit configuration.
    pub fn with_config(cfg: BertiConfig) -> Self {
        Berti {
            table: SetAssocTable::new(TableConfig::new((cfg.ip_entries / 4).max(1), 4)),
            stats: PrefetcherStats::default(),
            cfg,
        }
    }

    fn within_page_range(&self, from: BlockAddr, to: BlockAddr) -> bool {
        let page_from = (from.raw() >> 6) as i64;
        let page_to = (to.raw() >> 6) as i64;
        (page_to - page_from).abs() <= self.cfg.page_range
    }
}

impl Default for Berti {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for Berti {
    fn name(&self) -> &str {
        "vberti"
    }

    fn on_access(&mut self, access: &DemandAccess, _cache_hit: bool, sink: &mut RequestSink) {
        if !access.kind.is_load() {
            return;
        }
        self.stats.accesses += 1;
        let block = access.block();
        let pc = access.pc;
        let cfg = self.cfg;

        if self.table.peek(pc, pc).is_none() {
            let mut history = VecDeque::with_capacity(cfg.history_len);
            history.push_back(block);
            self.table.insert(
                pc,
                pc,
                IpEntry {
                    history,
                    deltas: Vec::new(),
                    round_accesses: 0,
                    best: Vec::new(),
                },
            );
            return;
        }
        let entry = self.table.get_mut(pc, pc).expect("entry just checked");

        // Learn timely deltas: compare against accesses far enough back in
        // this PC's history that the fetch would have completed in time.
        if entry.history.len() > cfg.timeliness_depth {
            let timely_end = entry.history.len() - cfg.timeliness_depth;
            for i in 0..timely_end {
                let delta = block.delta_from(entry.history[i]);
                if delta == 0 {
                    continue;
                }
                match entry.deltas.iter_mut().find(|d| d.delta == delta) {
                    Some(d) => d.hits += 1,
                    None => {
                        if entry.deltas.len() < cfg.deltas_per_ip {
                            entry.deltas.push(DeltaStat { delta, hits: 1 });
                        }
                    }
                }
            }
        }
        entry.history.push_back(block);
        if entry.history.len() > cfg.history_len {
            entry.history.pop_front();
        }

        // Periodically recompute the confident delta set.
        entry.round_accesses += 1;
        if entry.round_accesses >= cfg.round_len {
            let denom = f64::from(entry.round_accesses);
            entry.best = entry
                .deltas
                .iter()
                .map(|d| (d.delta, f64::from(d.hits) / denom))
                .filter(|(_, c)| *c >= cfg.l2_confidence)
                .collect();
            entry
                .best
                .sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            entry.best.truncate(4);
            entry.deltas.clear();
            entry.round_accesses = 0;
        }

        let best = entry.best.clone();
        let mut issued = 0u64;
        for (delta, confidence) in best {
            let target = block.offset_by(delta);
            if !self.within_page_range(block, target) {
                continue;
            }
            let req = if confidence >= cfg.l1_confidence {
                PrefetchRequest::to_l1(target)
            } else {
                PrefetchRequest::to_l2(target)
            };
            sink.push(req);
            issued += 1;
        }
        self.stats.issued += issued;
    }

    fn storage_bits(&self) -> u64 {
        // Table IV reports 2.55 KB for vBerti's tables (excluding the L1D
        // line extensions it needs for latency measurement).
        let per_entry = 16 // PC tag
            + self.cfg.history_len as u64 * 12
            + self.cfg.deltas_per_ip as u64 * (13 + 6)
            + 4 * (13 + 6)
            + 8;
        self.cfg.ip_entries as u64 * per_entry
    }

    fn stats(&self) -> PrefetcherStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefetch_common::prefetcher::PrefetcherExt;
    use prefetch_common::request::FillLevel;

    fn run(p: &mut Berti, pc: u64, blocks: &[u64]) -> Vec<PrefetchRequest> {
        let mut out = Vec::new();
        for &b in blocks {
            out.extend(p.on_access_vec(&DemandAccess::load(pc, b * 64), false));
        }
        out
    }

    #[test]
    fn streaming_pc_learns_a_timely_delta() {
        let mut p = Berti::new();
        let blocks: Vec<u64> = (0..120u64).collect();
        let reqs = run(&mut p, 0x400, &blocks);
        assert!(
            !reqs.is_empty(),
            "a steady stream must produce prefetches after the first round"
        );
        // The learned deltas reach several blocks ahead (timeliness), not just +1.
        assert!(reqs.iter().any(|r| r.fill_level == FillLevel::L1));
        let ahead = reqs.iter().map(|r| r.block.raw() as i64).max().unwrap();
        assert!(
            ahead > 120,
            "prefetches should run ahead of the demand stream"
        );
    }

    #[test]
    fn irregular_pc_produces_no_confident_deltas() {
        let mut p = Berti::new();
        let mut state = 99u64;
        let blocks: Vec<u64> = (0..150)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 20) % 1_000_000
            })
            .collect();
        let reqs = run(&mut p, 0x400, &blocks);
        assert!(
            reqs.is_empty(),
            "random accesses must not generate confident deltas"
        );
    }

    #[test]
    fn cross_page_prefetches_are_limited_to_the_window() {
        let cfg = BertiConfig {
            page_range: 1,
            ..BertiConfig::default()
        };
        let mut p = Berti::with_config(cfg);
        // Stride of 96 blocks (1.5 pages): after learning, targets 1.5 pages
        // ahead are within a 1-page window only half the time.
        let blocks: Vec<u64> = (0..80u64).map(|i| i * 96).collect();
        let reqs = run(&mut p, 0x400, &blocks);
        // A generous window allows the same workload to prefetch more than
        // the narrow one, which suppresses most of it.
        let mut wide = Berti::new();
        let wide_reqs = run(&mut wide, 0x400, &blocks);
        assert!(wide_reqs.len() >= reqs.len());
    }

    #[test]
    fn confidence_splits_fill_levels() {
        let mut p = Berti::new();
        // Alternate between two strides so one delta has ~50% confidence.
        let mut blocks = Vec::new();
        let mut b = 0u64;
        for i in 0..200 {
            b += if i % 2 == 0 { 1 } else { 3 };
            blocks.push(b);
        }
        let reqs = run(&mut p, 0x400, &blocks);
        assert!(!reqs.is_empty());
        assert!(
            reqs.iter().any(|r| r.fill_level == FillLevel::L2),
            "medium-confidence deltas must fall back to L2 fills"
        );
    }

    #[test]
    fn storage_is_a_few_kilobytes() {
        let p = Berti::new();
        let kb = p.storage_bits() as f64 / 8.0 / 1024.0;
        assert!(
            kb > 1.0 && kb < 4.0,
            "vBerti tables should be a few KB, got {kb:.2}"
        );
    }
}
