//! Spatial Memory Streaming (SMS, ISCA'06).
//!
//! SMS learns one footprint per *PC+Offset* trigger event. When a region is
//! activated, the trigger's PC and offset form the lookup key; a hit replays
//! the stored footprint into the L1D. The pattern history is huge in the
//! original proposal (16k entries ≈ 117 KB, Table IV), which is the
//! hardware-cost end of the fine-grained characterization spectrum.

use prefetch_common::access::DemandAccess;
use prefetch_common::addr::BlockAddr;
use prefetch_common::footprint::Footprint;
use prefetch_common::prefetcher::{Prefetcher, PrefetcherStats};
use prefetch_common::request::PrefetchRequest;
use prefetch_common::sink::RequestSink;
use prefetch_common::table::{SetAssocTable, TableConfig};

use crate::region_tracker::{Activation, Deactivation, RegionTracker};

/// Configuration of [`Sms`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmsConfig {
    /// Spatial-region size in bytes (2 KB in the paper's setup, Table IV).
    pub region_size: u64,
    /// Active-region tracking entries.
    pub tracker_entries: usize,
    /// Pattern history entries (16k for the optimal configuration).
    pub pht_entries: usize,
    /// Pattern history associativity.
    pub pht_ways: usize,
}

impl Default for SmsConfig {
    fn default() -> Self {
        SmsConfig {
            region_size: 2048,
            tracker_entries: 64,
            pht_entries: 16 * 1024,
            pht_ways: 16,
        }
    }
}

/// The SMS prefetcher.
#[derive(Debug)]
pub struct Sms {
    cfg: SmsConfig,
    tracker: RegionTracker,
    history: SetAssocTable<Footprint>,
    stats: PrefetcherStats,
}

impl Sms {
    /// Creates an SMS prefetcher with the Table IV configuration.
    pub fn new() -> Self {
        Self::with_config(SmsConfig::default())
    }

    /// Creates an SMS prefetcher from an explicit configuration.
    pub fn with_config(cfg: SmsConfig) -> Self {
        Sms {
            tracker: RegionTracker::new(cfg.region_size, cfg.tracker_entries, 8),
            history: SetAssocTable::new(TableConfig::new(
                (cfg.pht_entries / cfg.pht_ways).max(1),
                cfg.pht_ways,
            )),
            stats: PrefetcherStats::default(),
            cfg,
        }
    }

    fn key(&self, pc: u64, offset: usize) -> (u64, u64) {
        let event = (pc << 6) ^ offset as u64;
        (event, event)
    }

    fn learn(&mut self, d: &Deactivation) {
        self.stats.trainings += 1;
        let (index, tag) = self.key(d.pc, d.offset);
        self.history.insert(index, tag, d.footprint.clone());
    }

    fn predict(&mut self, a: &Activation, sink: &mut RequestSink) {
        let (index, tag) = self.key(a.pc, a.offset);
        let Some(footprint) = self.history.get(index, tag).cloned() else {
            return;
        };
        let geom = self.tracker.geometry();
        let region = prefetch_common::addr::RegionId::new(a.region);
        let mut issued = 0u64;
        for o in footprint.iter_set().filter(|&o| o != a.offset) {
            sink.push(PrefetchRequest::to_l1(geom.block_at(region, o)));
            issued += 1;
        }
        self.stats.issued += issued;
    }
}

impl Default for Sms {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for Sms {
    fn name(&self) -> &str {
        "sms"
    }

    fn on_access(&mut self, access: &DemandAccess, _cache_hit: bool, sink: &mut RequestSink) {
        if !access.kind.is_load() {
            return;
        }
        self.stats.accesses += 1;
        let outcome = self.tracker.access(access.pc, access.addr);
        for d in &outcome.deactivations {
            self.learn(d);
        }
        if let Some(a) = &outcome.activation {
            self.predict(a, sink);
        }
    }

    fn on_evict(&mut self, block: BlockAddr) {
        if let Some(d) = self.tracker.evict_block(block) {
            self.learn(&d);
        }
    }

    fn storage_bits(&self) -> u64 {
        let blocks = self.tracker.geometry().blocks_per_region() as u64;
        // PHT: tag (16b) + LRU (4b) + footprint; tracker: tag + pc + offset + footprint.
        let pht = self.cfg.pht_entries as u64 * (16 + 4 + blocks);
        let tracker = self.cfg.tracker_entries as u64 * (36 + 3 + 16 + 6 + blocks);
        pht + tracker
    }

    fn stats(&self) -> PrefetcherStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefetch_common::prefetcher::PrefetcherExt;

    fn feed(p: &mut Sms, pc: u64, region: u64, offsets: &[usize]) -> Vec<PrefetchRequest> {
        let mut out = Vec::new();
        for &o in offsets {
            out.extend(p.on_access_vec(
                &DemandAccess::load(pc, region * 2048 + o as u64 * 64),
                false,
            ));
        }
        out
    }

    #[test]
    fn replays_footprint_for_matching_pc_offset() {
        let mut p = Sms::new();
        feed(&mut p, 0x400, 1, &[3, 7, 11]);
        p.on_evict(BlockAddr::new(32 + 3));
        // Same PC and trigger offset in a new region.
        let reqs = feed(&mut p, 0x400, 9, &[3]);
        let mut offs: Vec<u64> = reqs.iter().map(|r| r.block.raw() - 9 * 32).collect();
        offs.sort_unstable();
        assert_eq!(offs, vec![7, 11]);
    }

    #[test]
    fn different_pc_does_not_match() {
        let mut p = Sms::new();
        feed(&mut p, 0x400, 1, &[3, 7, 11]);
        p.on_evict(BlockAddr::new(32 + 3));
        assert!(feed(&mut p, 0x500, 9, &[3]).is_empty());
    }

    #[test]
    fn different_trigger_offset_does_not_match() {
        let mut p = Sms::new();
        feed(&mut p, 0x400, 1, &[3, 7, 11]);
        p.on_evict(BlockAddr::new(32 + 3));
        assert!(feed(&mut p, 0x400, 9, &[4]).is_empty());
    }

    #[test]
    fn storage_exceeds_100_kb_as_in_table_iv() {
        let p = Sms::new();
        assert!(
            p.storage_bits() / 8 / 1024 > 100,
            "SMS with a 16k-entry PHT costs >100 KB"
        );
    }

    #[test]
    fn learning_happens_on_tracker_lru_eviction_too() {
        let mut p = Sms::with_config(SmsConfig {
            tracker_entries: 8,
            ..SmsConfig::default()
        });
        feed(&mut p, 0x400, 1, &[3, 7]);
        // Activate enough regions to evict region 1 from the tracker.
        for region in 10..20u64 {
            feed(&mut p, 0x900, region, &[0, 1]);
        }
        let reqs = feed(&mut p, 0x400, 99, &[3]);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].block.raw(), 99 * 32 + 7);
    }
}
