//! IP-stride: the widely deployed commercial per-instruction stride
//! prefetcher (Intel "smart memory access" style).
//!
//! Each load instruction (PC) tracks its last accessed block and last stride;
//! when the same stride repeats, confidence grows and the prefetcher issues a
//! few blocks down the stride. It is cheap and very accurate on strided code
//! but covers nothing else.

use prefetch_common::access::DemandAccess;
use prefetch_common::addr::BlockAddr;
use prefetch_common::prefetcher::{Prefetcher, PrefetcherStats};
use prefetch_common::request::PrefetchRequest;
use prefetch_common::sink::RequestSink;
use prefetch_common::table::{SetAssocTable, TableConfig};

#[derive(Debug, Clone, Copy)]
struct IpEntry {
    last_block: BlockAddr,
    stride: i64,
    confidence: u8,
}

/// Configuration of [`IpStride`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IpStrideConfig {
    /// Number of tracked instruction pointers.
    pub entries: usize,
    /// Associativity of the IP table.
    pub ways: usize,
    /// Confidence (0–3) required before prefetching.
    pub threshold: u8,
    /// Number of blocks prefetched ahead once confident.
    pub degree: usize,
}

impl Default for IpStrideConfig {
    fn default() -> Self {
        IpStrideConfig {
            entries: 64,
            ways: 4,
            threshold: 2,
            degree: 3,
        }
    }
}

/// The IP-stride prefetcher.
#[derive(Debug)]
pub struct IpStride {
    cfg: IpStrideConfig,
    table: SetAssocTable<IpEntry>,
    stats: PrefetcherStats,
}

impl IpStride {
    /// Creates an IP-stride prefetcher with the default 64-entry table.
    pub fn new() -> Self {
        Self::with_config(IpStrideConfig::default())
    }

    /// Creates an IP-stride prefetcher with an explicit configuration.
    pub fn with_config(cfg: IpStrideConfig) -> Self {
        IpStride {
            table: SetAssocTable::new(TableConfig::new((cfg.entries / cfg.ways).max(1), cfg.ways)),
            stats: PrefetcherStats::default(),
            cfg,
        }
    }
}

impl Default for IpStride {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for IpStride {
    fn name(&self) -> &str {
        "ip-stride"
    }

    fn on_access(&mut self, access: &DemandAccess, _cache_hit: bool, sink: &mut RequestSink) {
        if !access.kind.is_load() {
            return;
        }
        self.stats.accesses += 1;
        let block = access.block();
        let pc = access.pc;
        match self.table.get_mut(pc, pc) {
            Some(entry) => {
                let stride = block.delta_from(entry.last_block);
                if stride == 0 {
                    return;
                }
                if stride == entry.stride {
                    entry.confidence = (entry.confidence + 1).min(3);
                } else {
                    entry.confidence = entry.confidence.saturating_sub(1);
                    if entry.confidence == 0 {
                        entry.stride = stride;
                    }
                }
                entry.last_block = block;
                if entry.confidence >= self.cfg.threshold && entry.stride != 0 {
                    let s = entry.stride;
                    for i in 1..=self.cfg.degree as i64 {
                        sink.push(PrefetchRequest::to_l1(block.offset_by(s * i)));
                    }
                    self.stats.issued += self.cfg.degree as u64;
                }
            }
            None => {
                self.table.insert(
                    pc,
                    pc,
                    IpEntry {
                        last_block: block,
                        stride: 0,
                        confidence: 0,
                    },
                );
            }
        }
    }

    fn storage_bits(&self) -> u64 {
        // PC tag (16b hashed) + last block (36b) + stride (7b) + confidence (2b) + LRU (2b).
        self.cfg.entries as u64 * (16 + 36 + 7 + 2 + 2)
    }

    fn stats(&self) -> PrefetcherStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefetch_common::prefetcher::PrefetcherExt;

    fn run(p: &mut IpStride, pc: u64, blocks: &[u64]) -> Vec<PrefetchRequest> {
        let mut out = Vec::new();
        for &b in blocks {
            out.extend(p.on_access_vec(&DemandAccess::load(pc, b * 64), false));
        }
        out
    }

    #[test]
    fn constant_stride_is_learned_and_prefetched() {
        let mut p = IpStride::new();
        let reqs = run(&mut p, 0x400, &[10, 12, 14, 16, 18]);
        assert!(!reqs.is_empty());
        // After confidence builds, each access prefetches stride-2 blocks ahead.
        let last = &reqs[reqs.len() - 3..];
        assert_eq!(last[0].block.raw(), 20);
        assert_eq!(last[1].block.raw(), 22);
        assert_eq!(last[2].block.raw(), 24);
    }

    #[test]
    fn irregular_accesses_do_not_prefetch() {
        let mut p = IpStride::new();
        let reqs = run(&mut p, 0x400, &[10, 100, 3, 77, 912, 5]);
        assert!(reqs.is_empty());
    }

    #[test]
    fn stride_change_requires_relearning() {
        let mut p = IpStride::new();
        run(&mut p, 0x400, &[0, 1, 2, 3, 4]);
        // Switch from stride 1 to stride 10: confidence decays, then the new
        // stride is learned and prefetched.
        run(&mut p, 0x400, &[100, 110, 120, 130, 140, 150, 160]);
        let retrained = run(&mut p, 0x400, &[170]);
        assert_eq!(retrained.len(), 3);
        assert_eq!(retrained[0].block.raw(), 180);
        assert_eq!(retrained[2].block.raw(), 200);
    }

    #[test]
    fn different_pcs_are_tracked_independently() {
        let mut p = IpStride::new();
        run(&mut p, 0x400, &[0, 2, 4, 6]);
        // A different PC has no history yet.
        let other = run(&mut p, 0x500, &[1000]);
        assert!(other.is_empty());
        // The original PC is still confident.
        let orig = run(&mut p, 0x400, &[8]);
        assert_eq!(orig.len(), 3);
    }

    #[test]
    fn storage_is_sub_kilobyte() {
        let p = IpStride::new();
        assert!(
            p.storage_bits() / 8 < 1024,
            "IP-stride must stay well under 1 KB"
        );
    }

    #[test]
    fn stores_ignored() {
        let mut p = IpStride::new();
        assert!(p
            .on_access_vec(&DemandAccess::store(0x1, 0), false)
            .is_empty());
        assert_eq!(p.stats().accesses, 0);
    }
}
