//! The plain context-characterization prefetchers of Fig. 1.
//!
//! Fig. 1 compares spatial-pattern prediction keyed by different
//! environmental contexts: the trigger `Offset`, the trigger `PC`, and
//! `PC+Address`, each with a small pattern history (their "-opt" versions are
//! PMP, DSPatch and Bingo respectively, implemented in their own modules, and
//! the `Offset` point is `GazeConfig::offset_only`). This module provides the
//! two remaining plain schemes as one generic footprint prefetcher
//! parameterized by its key extractor.

use prefetch_common::access::DemandAccess;
use prefetch_common::addr::BlockAddr;
use prefetch_common::footprint::Footprint;
use prefetch_common::prefetcher::{Prefetcher, PrefetcherStats};
use prefetch_common::request::PrefetchRequest;
use prefetch_common::sink::RequestSink;
use prefetch_common::table::{SetAssocTable, TableConfig};

use crate::region_tracker::{Activation, Deactivation, RegionTracker};

/// Which environmental context keys the pattern history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContextKind {
    /// The trigger instruction (PC) alone — the plain `PC` point of Fig. 1.
    Pc,
    /// The trigger PC combined with the region address — the plain
    /// `PC+Address` point of Fig. 1.
    PcAddress,
}

/// Configuration of [`ContextPattern`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContextPatternConfig {
    /// Which context keys the history.
    pub kind: ContextKind,
    /// Spatial-region size in bytes.
    pub region_size: u64,
    /// Pattern-history entries.
    pub pht_entries: usize,
    /// Pattern-history associativity.
    pub pht_ways: usize,
    /// Active-region tracking entries.
    pub tracker_entries: usize,
}

impl ContextPatternConfig {
    /// The plain `PC` scheme (a small per-PC footprint table, ~3 KB).
    pub fn pc() -> Self {
        ContextPatternConfig {
            kind: ContextKind::Pc,
            region_size: 4096,
            pht_entries: 256,
            pht_ways: 8,
            tracker_entries: 64,
        }
    }

    /// The plain `PC+Address` scheme (needs a very large history to be
    /// useful; Fig. 1 marks it at >100 KB).
    pub fn pc_address() -> Self {
        ContextPatternConfig {
            kind: ContextKind::PcAddress,
            region_size: 4096,
            pht_entries: 8 * 1024,
            pht_ways: 16,
            tracker_entries: 64,
        }
    }
}

/// A spatial-pattern prefetcher keyed by a single environmental context.
#[derive(Debug)]
pub struct ContextPattern {
    cfg: ContextPatternConfig,
    tracker: RegionTracker,
    history: SetAssocTable<Footprint>,
    stats: PrefetcherStats,
}

impl ContextPattern {
    /// Creates a context-keyed footprint prefetcher.
    pub fn new(cfg: ContextPatternConfig) -> Self {
        ContextPattern {
            tracker: RegionTracker::new(cfg.region_size, cfg.tracker_entries, 8),
            history: SetAssocTable::new(TableConfig::new(
                (cfg.pht_entries / cfg.pht_ways).max(1),
                cfg.pht_ways,
            )),
            stats: PrefetcherStats::default(),
            cfg,
        }
    }

    fn key(&self, pc: u64, region: u64) -> u64 {
        match self.cfg.kind {
            ContextKind::Pc => pc ^ (pc >> 17),
            ContextKind::PcAddress => pc.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ region,
        }
    }

    fn learn(&mut self, d: &Deactivation) {
        self.stats.trainings += 1;
        let key = self.key(d.pc, d.region);
        let anchored = d.footprint.rotate_to_anchor(d.offset);
        self.history.insert(key, key, anchored);
    }

    fn predict(&mut self, a: &Activation, sink: &mut RequestSink) {
        let key = self.key(a.pc, a.region);
        let Some(anchored) = self.history.get(key, key).cloned() else {
            return;
        };
        let geom = self.tracker.geometry();
        let blocks = geom.blocks_per_region();
        let region = prefetch_common::addr::RegionId::new(a.region);
        let mut issued = 0u64;
        for o in anchored
            .iter_set()
            .map(|rotated| (rotated + a.offset) % blocks)
            .filter(|&o| o != a.offset)
        {
            sink.push(PrefetchRequest::to_l1(geom.block_at(region, o)));
            issued += 1;
        }
        self.stats.issued += issued;
    }
}

impl Prefetcher for ContextPattern {
    fn name(&self) -> &str {
        match self.cfg.kind {
            ContextKind::Pc => "pc-pattern",
            ContextKind::PcAddress => "pc-addr-pattern",
        }
    }

    fn on_access(&mut self, access: &DemandAccess, _cache_hit: bool, sink: &mut RequestSink) {
        if !access.kind.is_load() {
            return;
        }
        self.stats.accesses += 1;
        let outcome = self.tracker.access(access.pc, access.addr);
        for d in &outcome.deactivations {
            self.learn(d);
        }
        if let Some(a) = &outcome.activation {
            self.predict(a, sink);
        }
    }

    fn on_evict(&mut self, block: BlockAddr) {
        if let Some(d) = self.tracker.evict_block(block) {
            self.learn(&d);
        }
    }

    fn storage_bits(&self) -> u64 {
        let blocks = self.tracker.geometry().blocks_per_region() as u64;
        let tag = match self.cfg.kind {
            ContextKind::Pc => 16,
            ContextKind::PcAddress => 38,
        };
        let pht = self.cfg.pht_entries as u64 * (tag + 4 + blocks);
        let tracker = self.cfg.tracker_entries as u64 * (36 + 3 + 16 + 6 + blocks);
        pht + tracker
    }

    fn stats(&self) -> PrefetcherStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefetch_common::prefetcher::PrefetcherExt;

    fn feed(
        p: &mut ContextPattern,
        pc: u64,
        region: u64,
        offsets: &[usize],
    ) -> Vec<PrefetchRequest> {
        let mut out = Vec::new();
        for &o in offsets {
            out.extend(p.on_access_vec(
                &DemandAccess::load(pc, region * 4096 + o as u64 * 64),
                false,
            ));
        }
        out
    }

    #[test]
    fn pc_scheme_generalizes_across_regions() {
        let mut p = ContextPattern::new(ContextPatternConfig::pc());
        feed(&mut p, 0x400, 1, &[4, 6, 8]);
        p.on_evict(BlockAddr::new(64 + 4));
        // Same PC, brand-new region, different trigger offset: rotated replay.
        let reqs = feed(&mut p, 0x400, 9, &[20]);
        let mut offs: Vec<u64> = reqs.iter().map(|r| r.block.raw() - 9 * 64).collect();
        offs.sort_unstable();
        assert_eq!(offs, vec![22, 24]);
    }

    #[test]
    fn pc_address_scheme_requires_the_same_region() {
        let mut p = ContextPattern::new(ContextPatternConfig::pc_address());
        feed(&mut p, 0x400, 1, &[4, 6, 8]);
        p.on_evict(BlockAddr::new(64 + 4));
        // Same PC but a different region: no match for PC+Address.
        assert!(feed(&mut p, 0x400, 9, &[4]).is_empty());
        // The same PC re-touching the same region matches.
        let reqs = feed(&mut p, 0x400, 1, &[4]);
        assert_eq!(reqs.len(), 2);
    }

    #[test]
    fn pc_address_storage_dwarfs_pc_storage() {
        let pc = ContextPattern::new(ContextPatternConfig::pc());
        let pca = ContextPattern::new(ContextPatternConfig::pc_address());
        assert!(pca.storage_bits() > 10 * pc.storage_bits());
        assert!(pc.storage_bits() / 8 / 1024 < 5);
    }

    #[test]
    fn names_distinguish_the_schemes() {
        assert_eq!(
            ContextPattern::new(ContextPatternConfig::pc()).name(),
            "pc-pattern"
        );
        assert_eq!(
            ContextPattern::new(ContextPatternConfig::pc_address()).name(),
            "pc-addr-pattern"
        );
    }
}
