//! Bingo (HPCA'19): long-and-short-event association.
//!
//! Bingo observes that the short event *PC+Offset* is carried inside the long
//! event *PC+Address*. Patterns are stored once, tagged with both events; a
//! lookup first tries the long event (exact match — high accuracy) and falls
//! back to the short event (approximate match — extra coverage). Like SMS it
//! needs a very large pattern history to reach its best performance.

use prefetch_common::access::DemandAccess;
use prefetch_common::addr::BlockAddr;
use prefetch_common::footprint::Footprint;
use prefetch_common::prefetcher::{Prefetcher, PrefetcherStats};
use prefetch_common::request::PrefetchRequest;
use prefetch_common::sink::RequestSink;
use prefetch_common::table::{SetAssocTable, TableConfig};

use crate::region_tracker::{Activation, Deactivation, RegionTracker};

/// Configuration of [`Bingo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BingoConfig {
    /// Spatial-region size in bytes (2 KB, Table IV).
    pub region_size: u64,
    /// Active-region tracking entries.
    pub tracker_entries: usize,
    /// Pattern history entries (16k for the optimal configuration).
    pub pht_entries: usize,
    /// Pattern history associativity.
    pub pht_ways: usize,
}

impl Default for BingoConfig {
    fn default() -> Self {
        BingoConfig {
            region_size: 2048,
            tracker_entries: 64,
            pht_entries: 16 * 1024,
            pht_ways: 16,
        }
    }
}

#[derive(Debug, Clone)]
struct BingoEntry {
    /// Hash of the long event (PC + region address) for exact matching.
    long_tag: u64,
    footprint: Footprint,
}

/// The Bingo prefetcher.
#[derive(Debug)]
pub struct Bingo {
    cfg: BingoConfig,
    tracker: RegionTracker,
    history: SetAssocTable<BingoEntry>,
    stats: PrefetcherStats,
    long_hits: u64,
    short_hits: u64,
}

impl Bingo {
    /// Creates a Bingo prefetcher with the Table IV configuration.
    pub fn new() -> Self {
        Self::with_config(BingoConfig::default())
    }

    /// Creates a Bingo prefetcher from an explicit configuration.
    pub fn with_config(cfg: BingoConfig) -> Self {
        Bingo {
            tracker: RegionTracker::new(cfg.region_size, cfg.tracker_entries, 8),
            history: SetAssocTable::new(TableConfig::new(
                (cfg.pht_entries / cfg.pht_ways).max(1),
                cfg.pht_ways,
            )),
            stats: PrefetcherStats::default(),
            cfg,
            long_hits: 0,
            short_hits: 0,
        }
    }

    /// `(long-match hits, short-match hits)` observed so far.
    pub fn match_counts(&self) -> (u64, u64) {
        (self.long_hits, self.short_hits)
    }

    fn short_key(pc: u64, offset: usize) -> u64 {
        (pc << 6) ^ offset as u64
    }

    fn long_tag(pc: u64, region: u64, offset: usize) -> u64 {
        pc.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (region << 6) ^ offset as u64
    }

    fn learn(&mut self, d: &Deactivation) {
        self.stats.trainings += 1;
        let key = Self::short_key(d.pc, d.offset);
        let entry = BingoEntry {
            long_tag: Self::long_tag(d.pc, d.region, d.offset),
            footprint: d.footprint.clone(),
        };
        self.history.insert(key, key, entry);
    }

    fn predict(&mut self, a: &Activation, sink: &mut RequestSink) {
        let key = Self::short_key(a.pc, a.offset);
        let long = Self::long_tag(a.pc, a.region, a.offset);
        let Some(entry) = self.history.get(key, key) else {
            return;
        };
        if entry.long_tag == long {
            self.long_hits += 1;
        } else {
            self.short_hits += 1;
        }
        let footprint = entry.footprint.clone();
        let geom = self.tracker.geometry();
        let region = prefetch_common::addr::RegionId::new(a.region);
        let mut issued = 0u64;
        for o in footprint.iter_set().filter(|&o| o != a.offset) {
            sink.push(PrefetchRequest::to_l1(geom.block_at(region, o)));
            issued += 1;
        }
        self.stats.issued += issued;
    }
}

impl Default for Bingo {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for Bingo {
    fn name(&self) -> &str {
        "bingo"
    }

    fn on_access(&mut self, access: &DemandAccess, _cache_hit: bool, sink: &mut RequestSink) {
        if !access.kind.is_load() {
            return;
        }
        self.stats.accesses += 1;
        let outcome = self.tracker.access(access.pc, access.addr);
        for d in &outcome.deactivations {
            self.learn(d);
        }
        if let Some(a) = &outcome.activation {
            self.predict(a, sink);
        }
    }

    fn on_evict(&mut self, block: BlockAddr) {
        if let Some(d) = self.tracker.evict_block(block) {
            self.learn(&d);
        }
    }

    fn storage_bits(&self) -> u64 {
        let blocks = self.tracker.geometry().blocks_per_region() as u64;
        // Each entry additionally stores the long-event tag (approx. 22 bits).
        let pht = self.cfg.pht_entries as u64 * (16 + 4 + 22 + blocks);
        let tracker = self.cfg.tracker_entries as u64 * (36 + 3 + 16 + 6 + blocks);
        pht + tracker
    }

    fn stats(&self) -> PrefetcherStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefetch_common::prefetcher::PrefetcherExt;

    fn feed(p: &mut Bingo, pc: u64, region: u64, offsets: &[usize]) -> Vec<PrefetchRequest> {
        let mut out = Vec::new();
        for &o in offsets {
            out.extend(p.on_access_vec(
                &DemandAccess::load(pc, region * 2048 + o as u64 * 64),
                false,
            ));
        }
        out
    }

    #[test]
    fn exact_long_event_match_replays_pattern() {
        let mut p = Bingo::new();
        feed(&mut p, 0x400, 5, &[2, 6, 10]);
        p.on_evict(BlockAddr::new(5 * 32 + 2));
        // Re-activate the *same* region with the same PC: long-event match.
        let reqs = feed(&mut p, 0x400, 5, &[2]);
        assert_eq!(reqs.len(), 2);
        assert_eq!(p.match_counts(), (1, 0));
    }

    #[test]
    fn short_event_fallback_covers_new_regions() {
        let mut p = Bingo::new();
        feed(&mut p, 0x400, 5, &[2, 6, 10]);
        p.on_evict(BlockAddr::new(5 * 32 + 2));
        // A different region with the same PC+offset: short-event match.
        let reqs = feed(&mut p, 0x400, 77, &[2]);
        let mut offs: Vec<u64> = reqs.iter().map(|r| r.block.raw() - 77 * 32).collect();
        offs.sort_unstable();
        assert_eq!(offs, vec![6, 10]);
        assert_eq!(p.match_counts(), (0, 1));
    }

    #[test]
    fn unrelated_trigger_does_not_match() {
        let mut p = Bingo::new();
        feed(&mut p, 0x400, 5, &[2, 6, 10]);
        p.on_evict(BlockAddr::new(5 * 32 + 2));
        assert!(feed(&mut p, 0x900, 77, &[3]).is_empty());
    }

    #[test]
    fn storage_is_larger_than_sms() {
        let bingo = Bingo::new();
        let sms = crate::sms::Sms::new();
        use prefetch_common::prefetcher::Prefetcher as _;
        assert!(bingo.storage_bits() > sms.storage_bits());
        assert!(bingo.storage_bits() / 8 / 1024 > 120);
    }
}
