//! PMP — the Pattern Merging Prefetcher (MICRO'22).
//!
//! PMP coarsens characterization all the way down to the trigger **offset**:
//! for each of the 64 possible trigger offsets it merges the most recent 32
//! footprints (anchored at the trigger) into a vector of small saturating
//! counters. Prediction thresholds the counters — strong agreement fetches
//! into the L1, weak agreement into the L2. The scheme almost always finds a
//! match after a short warm-up, but its characterization is so coarse that
//! complex workloads (CloudSuite) suffer from low accuracy, which is the
//! behaviour the Gaze paper contrasts against.

use prefetch_common::access::DemandAccess;
use prefetch_common::addr::BlockAddr;
use prefetch_common::prefetcher::{Prefetcher, PrefetcherStats};
use prefetch_common::request::PrefetchRequest;
use prefetch_common::sink::RequestSink;

use crate::region_tracker::{Activation, Deactivation, RegionTracker};

/// Configuration of [`Pmp`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PmpConfig {
    /// Spatial-region size in bytes (4 KB, Table IV).
    pub region_size: u64,
    /// Active-region tracking entries.
    pub tracker_entries: usize,
    /// Maximum per-offset counter value before aging (MaxConf 32, Table IV).
    pub max_confidence: u32,
    /// Counter fraction required to prefetch into the L1 (0.5).
    pub l1_threshold: f64,
    /// Counter fraction required to prefetch into the L2 (0.15).
    pub l2_threshold: f64,
}

impl Default for PmpConfig {
    fn default() -> Self {
        PmpConfig {
            region_size: 4096,
            tracker_entries: 64,
            max_confidence: 32,
            l1_threshold: 0.5,
            l2_threshold: 0.15,
        }
    }
}

#[derive(Debug, Clone)]
struct OffsetPattern {
    counters: Vec<u32>,
    merged: u32,
}

/// The PMP prefetcher.
#[derive(Debug)]
pub struct Pmp {
    cfg: PmpConfig,
    tracker: RegionTracker,
    /// One merged counter-vector per trigger offset (the OPT).
    patterns: Vec<OffsetPattern>,
    stats: PrefetcherStats,
}

impl Pmp {
    /// Creates a PMP prefetcher with the Table IV configuration.
    pub fn new() -> Self {
        Self::with_config(PmpConfig::default())
    }

    /// Creates a PMP prefetcher from an explicit configuration.
    pub fn with_config(cfg: PmpConfig) -> Self {
        let tracker = RegionTracker::new(cfg.region_size, cfg.tracker_entries, 8);
        let blocks = tracker.geometry().blocks_per_region();
        Pmp {
            patterns: (0..blocks)
                .map(|_| OffsetPattern {
                    counters: vec![0; blocks],
                    merged: 0,
                })
                .collect(),
            tracker,
            stats: PrefetcherStats::default(),
            cfg,
        }
    }

    fn learn(&mut self, d: &Deactivation) {
        self.stats.trainings += 1;
        let anchored = d.footprint.rotate_to_anchor(d.offset);
        let entry = &mut self.patterns[d.offset];
        if entry.merged >= self.cfg.max_confidence {
            // Aging: halve the counters so old behaviour fades.
            for c in &mut entry.counters {
                *c /= 2;
            }
            entry.merged /= 2;
        }
        for o in anchored.iter_set() {
            entry.counters[o] = (entry.counters[o] + 1).min(self.cfg.max_confidence);
        }
        entry.merged += 1;
    }

    fn predict(&mut self, a: &Activation, sink: &mut RequestSink) {
        let entry = &self.patterns[a.offset];
        if entry.merged == 0 {
            return;
        }
        let denom = entry.merged.min(self.cfg.max_confidence) as f64;
        let geom = self.tracker.geometry();
        let blocks = geom.blocks_per_region();
        let region = prefetch_common::addr::RegionId::new(a.region);
        let mut issued = 0u64;
        for rotated in 0..blocks {
            let confidence = entry.counters[rotated] as f64 / denom;
            if confidence < self.cfg.l2_threshold {
                continue;
            }
            let offset = (rotated + a.offset) % blocks;
            if offset == a.offset {
                continue;
            }
            let block = geom.block_at(region, offset);
            let req = if confidence >= self.cfg.l1_threshold {
                PrefetchRequest::to_l1(block)
            } else {
                PrefetchRequest::to_l2(block)
            };
            sink.push(req);
            issued += 1;
        }
        self.stats.issued += issued;
    }
}

impl Default for Pmp {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for Pmp {
    fn name(&self) -> &str {
        "pmp"
    }

    fn on_access(&mut self, access: &DemandAccess, _cache_hit: bool, sink: &mut RequestSink) {
        if !access.kind.is_load() {
            return;
        }
        self.stats.accesses += 1;
        let outcome = self.tracker.access(access.pc, access.addr);
        for d in &outcome.deactivations {
            self.learn(d);
        }
        if let Some(a) = &outcome.activation {
            self.predict(a, sink);
        }
    }

    fn on_evict(&mut self, block: BlockAddr) {
        if let Some(d) = self.tracker.evict_block(block) {
            self.learn(&d);
        }
    }

    fn storage_bits(&self) -> u64 {
        let blocks = self.tracker.geometry().blocks_per_region() as u64;
        // OPT: 64 offsets × (64 counters × 5 bits = 320 b, plus the 160 b
        // coarse counter vector the paper attributes to PMP's PPT) plus the
        // merged counts, plus the tracker. Table IV lists 5.0 KB in total.
        let opt = blocks * (blocks * 5 + 160 + 6);
        let tracker = self.cfg.tracker_entries as u64 * (36 + 3 + 6 + blocks);
        opt + tracker
    }

    fn stats(&self) -> PrefetcherStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefetch_common::prefetcher::PrefetcherExt;
    use prefetch_common::request::FillLevel;

    fn feed(p: &mut Pmp, pc: u64, region: u64, offsets: &[usize]) -> Vec<PrefetchRequest> {
        let mut out = Vec::new();
        for &o in offsets {
            out.extend(p.on_access_vec(
                &DemandAccess::load(pc, region * 4096 + o as u64 * 64),
                false,
            ));
        }
        out
    }

    #[test]
    fn merged_pattern_predicts_consensus_blocks_to_l1() {
        let mut p = Pmp::new();
        // Three regions triggered at offset 2 that all touch +3 and +6; only
        // some touch +10.
        for (region, extra) in [(1u64, 10usize), (2, 10), (3, 20)] {
            feed(&mut p, 0x400, region, &[2, 5, 8, 2 + extra]);
            p.on_evict(BlockAddr::new(region * 64 + 2));
        }
        let reqs = feed(&mut p, 0x999, 50, &[2]);
        let l1: Vec<u64> = reqs
            .iter()
            .filter(|r| r.fill_level == FillLevel::L1)
            .map(|r| r.block.raw() - 50 * 64)
            .collect();
        // +3 and +6 (offsets 5 and 8) appear in every footprint -> L1.
        assert!(l1.contains(&5) && l1.contains(&8));
        // +10 appears in 2/3 of footprints -> still above the L1 threshold.
        // +20 appears in 1/3 -> L2 only.
        let l2: Vec<u64> = reqs
            .iter()
            .filter(|r| r.fill_level == FillLevel::L2)
            .map(|r| r.block.raw() - 50 * 64)
            .collect();
        assert!(l2.contains(&22));
    }

    #[test]
    fn pattern_is_keyed_by_offset_not_pc() {
        let mut p = Pmp::new();
        feed(&mut p, 0x400, 1, &[7, 9, 11]);
        p.on_evict(BlockAddr::new(64 + 7));
        // A completely different PC still matches because only the offset is used.
        let reqs = feed(&mut p, 0xdead, 2, &[7]);
        assert!(!reqs.is_empty());
    }

    #[test]
    fn different_trigger_offset_uses_a_different_merged_pattern() {
        let mut p = Pmp::new();
        feed(&mut p, 0x400, 1, &[7, 9, 11]);
        p.on_evict(BlockAddr::new(64 + 7));
        assert!(feed(&mut p, 0x400, 2, &[8]).is_empty());
    }

    #[test]
    fn aging_halves_counters_at_max_confidence() {
        let mut p = Pmp::with_config(PmpConfig {
            max_confidence: 4,
            ..PmpConfig::default()
        });
        for region in 1..=10u64 {
            feed(&mut p, 0x1, region, &[0, 1]);
            p.on_evict(BlockAddr::new(region * 64));
        }
        // The counter for +1 must never exceed max_confidence.
        assert!(p.patterns[0].counters[1] <= 4);
        assert!(p.patterns[0].merged <= 5);
    }

    #[test]
    fn storage_is_about_5_kilobytes() {
        let p = Pmp::new();
        let kb = p.storage_bits() as f64 / 8.0 / 1024.0;
        assert!(
            kb > 4.0 && kb < 6.5,
            "PMP storage should be about 5 KB, got {kb:.2}"
        );
    }
}
