//! Baseline hardware prefetchers evaluated against Gaze (HPCA 2025).
//!
//! Every prefetcher implements [`prefetch_common::Prefetcher`] and can be
//! attached to the `sim-core` simulator's L1D (or L2C, for the multi-level
//! study). The set matches §IV-A2 / Table IV of the paper:
//!
//! | module | prefetcher | characterization |
//! |---|---|---|
//! | [`ip_stride`] | IP-stride | per-PC constant stride (commercial baseline) |
//! | [`sms`] | SMS | PC+Offset footprints, 16k-entry history |
//! | [`bingo`] | Bingo | PC+Address with PC+Offset fallback |
//! | [`dspatch`] | DSPatch | per-PC dual (coverage/accuracy) bit patterns |
//! | [`pmp`] | PMP | per-Offset merged counter patterns |
//! | [`ipcp`] | IPCP-L1 | per-IP class (constant/complex stride, stream) |
//! | [`spp_ppf`] | SPP-PPF | signature-path deltas + perceptron filter |
//! | [`berti`] | vBerti | per-PC timely local deltas |
//! | [`characterization`] | plain PC / PC+Address footprint schemes (Fig. 1) |
//!
//! The `Offset` and `Offset-opt`/`PC-opt`/`PC+Addr-opt` points of Fig. 1 are
//! provided by `gaze::GazeConfig::offset_only`, [`pmp`], [`dspatch`] and
//! [`bingo`] respectively.

pub mod berti;
pub mod bingo;
pub mod characterization;
pub mod dspatch;
pub mod ip_stride;
pub mod ipcp;
pub mod pmp;
pub mod region_tracker;
pub mod sms;
pub mod spp_ppf;

pub use berti::{Berti, BertiConfig};
pub use bingo::{Bingo, BingoConfig};
pub use characterization::{ContextKind, ContextPattern, ContextPatternConfig};
pub use dspatch::{DsPatch, DsPatchConfig};
pub use ip_stride::{IpStride, IpStrideConfig};
pub use ipcp::{Ipcp, IpcpConfig};
pub use pmp::{Pmp, PmpConfig};
pub use region_tracker::{Activation, Deactivation, RegionTracker, TrackOutcome, TrackedRegion};
pub use sms::{Sms, SmsConfig};
pub use spp_ppf::{SppConfig, SppPpf};
