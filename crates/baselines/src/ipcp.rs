//! IPCP — Instruction Pointer Classifier-based Prefetching (ISCA'20).
//!
//! IPCP classifies each load IP into one of three classes and prefetches with
//! a class-specific engine:
//!
//! * **CS** (constant stride): the IP repeats a fixed block stride,
//! * **CPLX** (complex stride): the IP's stride sequence is irregular but
//!   predictable from a signature of recent strides,
//! * **GS** (global stream): the IP participates in a dense region-sized
//!   stream, detected from recent region density.
//!
//! The bouquet is evaluated at the L1D (`IPCP-L1` in the paper's figures).

use prefetch_common::access::DemandAccess;
use prefetch_common::addr::{BlockAddr, RegionGeometry};
use prefetch_common::prefetcher::{Prefetcher, PrefetcherStats};
use prefetch_common::request::PrefetchRequest;
use prefetch_common::sink::RequestSink;
use prefetch_common::table::{SetAssocTable, TableConfig};

/// Configuration of [`Ipcp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IpcpConfig {
    /// IP table entries (64, Table IV).
    pub ip_entries: usize,
    /// Complex-stride prediction table entries (128, Table IV).
    pub cspt_entries: usize,
    /// Region-stream tracker entries (8, Table IV).
    pub rst_entries: usize,
    /// Prefetch degree for the constant-stride class.
    pub cs_degree: usize,
    /// Prefetch degree for the global-stream class.
    pub gs_degree: usize,
    /// Region density (demanded blocks) that flips a region to "stream".
    pub stream_threshold: usize,
}

impl Default for IpcpConfig {
    fn default() -> Self {
        IpcpConfig {
            ip_entries: 64,
            cspt_entries: 128,
            rst_entries: 8,
            cs_degree: 4,
            gs_degree: 8,
            stream_threshold: 12,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct IpEntry {
    last_block: BlockAddr,
    last_stride: i64,
    cs_confidence: u8,
    stride_signature: u16,
    stream_confidence: u8,
}

#[derive(Debug, Clone, Copy)]
struct CsptEntry {
    stride: i64,
    confidence: u8,
}

#[derive(Debug, Clone, Copy)]
struct RegionEntry {
    touched: u32,
}

/// The IPCP-L1 prefetcher.
#[derive(Debug)]
pub struct Ipcp {
    cfg: IpcpConfig,
    geom: RegionGeometry,
    ip_table: SetAssocTable<IpEntry>,
    cspt: SetAssocTable<CsptEntry>,
    rst: SetAssocTable<RegionEntry>,
    stats: PrefetcherStats,
}

impl Ipcp {
    /// Creates an IPCP prefetcher with the Table IV configuration.
    pub fn new() -> Self {
        Self::with_config(IpcpConfig::default())
    }

    /// Creates an IPCP prefetcher from an explicit configuration.
    pub fn with_config(cfg: IpcpConfig) -> Self {
        Ipcp {
            geom: RegionGeometry::gaze_default(),
            ip_table: SetAssocTable::new(TableConfig::new((cfg.ip_entries / 4).max(1), 4)),
            cspt: SetAssocTable::new(TableConfig::new(cfg.cspt_entries.next_power_of_two(), 1)),
            rst: SetAssocTable::new(TableConfig::fully_associative(cfg.rst_entries)),
            stats: PrefetcherStats::default(),
            cfg,
        }
    }

    fn signature_update(sig: u16, stride: i64) -> u16 {
        ((sig << 3) ^ (stride as u16 & 0x3f)) & 0x7f
    }
}

impl Default for Ipcp {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for Ipcp {
    fn name(&self) -> &str {
        "ipcp-l1"
    }

    fn on_access(&mut self, access: &DemandAccess, _cache_hit: bool, sink: &mut RequestSink) {
        if !access.kind.is_load() {
            return;
        }
        self.stats.accesses += 1;
        let block = access.block();
        let pc = access.pc;
        let region = self.geom.region_of(access.addr).raw();
        let mut issued = 0u64;

        // Region-stream tracking (GS class).
        let stream_hot = {
            match self.rst.get_mut(region, region) {
                Some(r) => {
                    r.touched += 1;
                    r.touched as usize >= self.cfg.stream_threshold
                }
                None => {
                    self.rst.insert(region, region, RegionEntry { touched: 1 });
                    false
                }
            }
        };

        let entry = match self.ip_table.get_mut(pc, pc) {
            Some(e) => e,
            None => {
                self.ip_table.insert(
                    pc,
                    pc,
                    IpEntry {
                        last_block: block,
                        last_stride: 0,
                        cs_confidence: 0,
                        stride_signature: 0,
                        stream_confidence: 0,
                    },
                );
                return;
            }
        };

        let stride = block.delta_from(entry.last_block);
        if stride == 0 {
            return;
        }

        // Constant-stride classification.
        if stride == entry.last_stride {
            entry.cs_confidence = (entry.cs_confidence + 1).min(3);
        } else {
            entry.cs_confidence = entry.cs_confidence.saturating_sub(1);
        }
        // Stream classification.
        if stream_hot {
            entry.stream_confidence = (entry.stream_confidence + 1).min(3);
        } else {
            entry.stream_confidence = entry.stream_confidence.saturating_sub(1);
        }

        let old_signature = entry.stride_signature;
        entry.stride_signature = Self::signature_update(old_signature, stride);
        let cs_confident = entry.cs_confidence >= 2;
        let gs_confident = entry.stream_confidence >= 2;
        let last_stride = stride;
        entry.last_stride = stride;
        entry.last_block = block;
        let signature = entry.stride_signature;

        // Train the complex-stride table: old signature predicts this stride.
        match self
            .cspt
            .get_mut(u64::from(old_signature), u64::from(old_signature))
        {
            Some(c) => {
                if c.stride == stride {
                    c.confidence = (c.confidence + 1).min(3);
                } else {
                    c.confidence = c.confidence.saturating_sub(1);
                    if c.confidence == 0 {
                        c.stride = stride;
                    }
                }
            }
            None => {
                self.cspt.insert(
                    u64::from(old_signature),
                    u64::from(old_signature),
                    CsptEntry {
                        stride,
                        confidence: 1,
                    },
                );
            }
        }

        if gs_confident {
            // Global stream: aggressive next-line run.
            for i in 1..=self.cfg.gs_degree as i64 {
                sink.push(PrefetchRequest::to_l1(block.offset_by(i)));
                issued += 1;
            }
        } else if cs_confident {
            for i in 1..=self.cfg.cs_degree as i64 {
                sink.push(PrefetchRequest::to_l1(block.offset_by(last_stride * i)));
                issued += 1;
            }
        } else {
            // Complex stride: follow the signature chain for a couple of steps.
            let mut sig = signature;
            let mut current = block;
            for _ in 0..2 {
                let Some(c) = self.cspt.get(u64::from(sig), u64::from(sig)).copied() else {
                    break;
                };
                if c.confidence < 2 || c.stride == 0 {
                    break;
                }
                current = current.offset_by(c.stride);
                sink.push(PrefetchRequest::to_l1(current));
                issued += 1;
                sig = Self::signature_update(sig, c.stride);
            }
        }
        self.stats.issued += issued;
    }

    fn storage_bits(&self) -> u64 {
        // Table IV lists 0.7 KB total for IPCP.
        let ip = self.cfg.ip_entries as u64 * (16 + 36 + 7 + 2 + 7 + 2 + 2);
        let cspt = self.cfg.cspt_entries as u64 * (7 + 2);
        let rst = self.cfg.rst_entries as u64 * (36 + 6 + 3);
        ip + cspt + rst
    }

    fn stats(&self) -> PrefetcherStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefetch_common::prefetcher::PrefetcherExt;

    fn run(p: &mut Ipcp, pc: u64, blocks: &[u64]) -> Vec<PrefetchRequest> {
        let mut out = Vec::new();
        for &b in blocks {
            out.extend(p.on_access_vec(&DemandAccess::load(pc, b * 64), false));
        }
        out
    }

    #[test]
    fn constant_stride_class_prefetches_down_the_stride() {
        let mut p = Ipcp::new();
        let reqs = run(&mut p, 0x400, &[100, 103, 106, 109, 112]);
        assert!(!reqs.is_empty());
        let last = &reqs[reqs.len() - 4..];
        assert_eq!(last[0].block.raw(), 115);
        assert_eq!(last[3].block.raw(), 124);
    }

    #[test]
    fn complex_stride_class_follows_recurring_stride_sequences() {
        let mut p = Ipcp::new();
        // Repeating stride pattern +1,+2,+3 — not constant, but signature-predictable.
        let mut blocks = Vec::new();
        let mut b = 1000u64;
        for _ in 0..12 {
            for s in [1u64, 2, 3] {
                b += s;
                blocks.push(b);
            }
        }
        let reqs = run(&mut p, 0x400, &blocks);
        assert!(
            !reqs.is_empty(),
            "complex-stride engine should eventually predict"
        );
    }

    #[test]
    fn dense_region_activates_stream_class() {
        let mut p = Ipcp::new();
        let blocks: Vec<u64> = (0..32u64).collect();
        let reqs = run(&mut p, 0x400, &blocks);
        // Once the region is hot the degree jumps to the GS degree (8).
        let max_batch = reqs.windows(8).any(|w| {
            w.iter()
                .zip(w.iter().skip(1))
                .all(|(a, b)| b.block.raw() == a.block.raw() + 1)
        });
        assert!(
            max_batch,
            "expected an aggressive sequential run of prefetches"
        );
    }

    #[test]
    fn irregular_ip_stays_quiet() {
        let mut p = Ipcp::new();
        let reqs = run(&mut p, 0x400, &[5, 900, 17, 4400, 23, 77000]);
        assert!(
            reqs.len() <= 2,
            "irregular IP should produce almost no prefetches, got {}",
            reqs.len()
        );
    }

    #[test]
    fn storage_is_under_one_kilobyte() {
        let p = Ipcp::new();
        assert!(
            p.storage_bits() / 8 < 1024,
            "IPCP is a sub-KB design (0.7 KB in Table IV)"
        );
    }
}
