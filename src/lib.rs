//! Umbrella crate for the Gaze spatial prefetcher reproduction.
//!
//! This crate re-exports the workspace crates so that the examples under
//! `examples/` and the integration tests under `tests/` can use a single
//! dependency. Library users should depend on the individual crates
//! ([`gaze`], [`sim_core`], [`baselines`], [`workloads`], [`gaze_sim`],
//! [`results_store`], [`gaze_serve`]) directly.

pub use baselines;
pub use gaze;
pub use gaze_lint;
pub use gaze_obs;
pub use gaze_serve;
pub use gaze_sim;
pub use prefetch_common;
pub use results_store;
pub use sim_core;
pub use workloads;
