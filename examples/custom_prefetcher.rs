//! Implementing your own prefetcher against the `prefetch_common::Prefetcher`
//! trait and evaluating it in the simulator next to Gaze.
//!
//! The example builds a tiny next-N-line prefetcher, runs it on a streaming
//! and an irregular workload, and compares it with Gaze — the same workflow
//! you would use to prototype a new idea on this infrastructure.
//!
//! ```text
//! cargo run --release --example custom_prefetcher
//! ```

use prefetch_common::access::DemandAccess;
use prefetch_common::prefetcher::Prefetcher;
use prefetch_common::request::PrefetchRequest;
use prefetch_common::sink::RequestSink;

use gaze_sim::report::Table;
use gaze_sim::runner::{records_for, run_single, simulate_core, RunParams};
use workloads::build_workload;

/// A minimal sequential prefetcher: on every demand miss, fetch the next
/// `degree` lines into the L1D.
struct NextNLine {
    degree: usize,
    issued: u64,
}

impl NextNLine {
    fn new(degree: usize) -> Self {
        NextNLine { degree, issued: 0 }
    }
}

impl Prefetcher for NextNLine {
    fn name(&self) -> &str {
        "next-n-line"
    }

    fn on_access(&mut self, access: &DemandAccess, cache_hit: bool, sink: &mut RequestSink) {
        if cache_hit || !access.kind.is_load() {
            return;
        }
        self.issued += self.degree as u64;
        for d in 1..=self.degree as i64 {
            sink.push(PrefetchRequest::to_l1(access.block().offset_by(d)));
        }
    }

    fn storage_bits(&self) -> u64 {
        8 // a degree register
    }
}

fn main() {
    let params = RunParams::experiment();
    let mut table = Table::new(
        "Custom prefetcher vs Gaze",
        &["workload", "prefetcher", "speedup", "accuracy"],
    );
    for workload in ["bwaves_s", "cassandra"] {
        let trace = build_workload(workload, records_for(&params));
        let baseline = simulate_core(
            &trace,
            Box::new(prefetch_common::NullPrefetcher::new()),
            None,
            &params,
        );
        let custom = simulate_core(&trace, Box::new(NextNLine::new(4)), None, &params);
        let gaze = run_single(&trace, "gaze", &params);
        table.push_row(vec![
            workload.to_string(),
            "next-n-line(4)".to_string(),
            format!("{:.3}", custom.ipc() / baseline.ipc().max(1e-9)),
            format!("{:.3}", custom.overall_accuracy()),
        ]);
        table.push_row(vec![
            workload.to_string(),
            "gaze".to_string(),
            format!("{:.3}", gaze.speedup()),
            format!("{:.3}", gaze.accuracy()),
        ]);
    }
    println!("{table}");
}
