//! The Fig. 5 scenario: graph analytics interleaves spatial streaming (the
//! frontier sweep) with irregular property accesses, which is exactly where
//! naive use of dense footprints over-prefetches. This example contrasts
//! full Gaze with its `PHT4SS` ablation (no dedicated streaming module) on
//! Ligra-like workloads.
//!
//! ```text
//! cargo run --release --example graph_analytics
//! ```

use gaze_sim::report::Table;
use gaze_sim::runner::{records_for, run_single, RunParams};
use workloads::build_workload;

fn main() {
    let params = RunParams::experiment();
    let workloads = ["BFS-init", "BFS", "PageRank", "BellmanFord", "Components"];
    let mut table = Table::new(
        "Graph analytics: streaming-module control vs naive dense-pattern use",
        &[
            "workload",
            "pht4ss_speedup",
            "gaze_speedup",
            "pht4ss_acc",
            "gaze_acc",
        ],
    );
    for name in workloads {
        let trace = build_workload(name, records_for(&params));
        let naive = run_single(&trace, "pht4ss", &params);
        let gaze = run_single(&trace, "gaze", &params);
        table.push_row(vec![
            name.to_string(),
            format!("{:.3}", naive.speedup()),
            format!("{:.3}", gaze.speedup()),
            format!("{:.3}", naive.accuracy()),
            format!("{:.3}", gaze.accuracy()),
        ]);
    }
    println!("{table}");
    println!("The initial (data-preparation) phase is pure streaming, so both settings agree;");
    println!("in the compute phase the dedicated streaming module avoids misusing dense patterns.");
}
