//! Multi-core contention: run a four-core heterogeneous mix (Table VI style)
//! under different prefetchers and show how per-core speedups diverge as
//! shared-resource pressure grows.
//!
//! ```text
//! cargo run --release --example multicore_contention
//! ```

use gaze_sim::report::Table;
use gaze_sim::runner::{multicore_speedup, records_for, RunParams};
use workloads::build_workload;

fn main() {
    let params = RunParams::experiment();
    let records = records_for(&params);
    let names = ["bwaves_s", "PageRank", "mcf_s", "cassandra"];
    let traces: Vec<_> = names.iter().map(|n| build_workload(n, records)).collect();
    let refs: Vec<&dyn sim_core::trace::TraceSource> = traces.iter().map(|t| t as _).collect();

    let mut table = Table::new(
        "Four-core heterogeneous mix: per-core speedup over no prefetching",
        &[
            "prefetcher",
            "bwaves_s",
            "PageRank",
            "mcf_s",
            "cassandra",
            "geomean",
        ],
    );
    for prefetcher in ["pmp", "vberti", "gaze"] {
        let (with, base, speedup) = multicore_speedup(&refs, prefetcher, &params);
        let mut row = vec![prefetcher.to_string()];
        for core in 0..4 {
            let s = with.cores[core].ipc() / base.cores[core].ipc().max(1e-9);
            row.push(format!("{s:.3}"));
        }
        row.push(format!("{speedup:.3}"));
        table.push_row(row);
    }
    println!("{table}");
    println!("Aggressive, low-accuracy prefetching hurts co-runners through shared LLC and DRAM;");
    println!("Gaze's accuracy keeps the degradation gradual (paper §IV-B6).");
}
