//! Compare every evaluated prefetcher on one workload, the way Fig. 6–8 does
//! per suite.
//!
//! ```text
//! cargo run --release --example prefetcher_shootout [workload]
//! ```

use gaze_sim::factory::MAIN_PREFETCHERS;
use gaze_sim::report::Table;
use gaze_sim::runner::{records_for, run_single, RunParams};
use workloads::build_workload;

fn main() {
    let workload = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "fotonik3d_s".to_string());
    let params = RunParams::experiment();
    let trace = build_workload(&workload, records_for(&params));

    let mut table = Table::new(
        format!("Prefetcher comparison on {workload}"),
        &[
            "prefetcher",
            "speedup",
            "accuracy",
            "coverage",
            "late",
            "storage_KB",
        ],
    );
    for name in MAIN_PREFETCHERS {
        let run = run_single(&trace, name, &params);
        let kb = gaze_sim::make_prefetcher(name).storage_bits() as f64 / 8.0 / 1024.0;
        table.push_row(vec![
            name.to_string(),
            format!("{:.3}", run.speedup()),
            format!("{:.3}", run.accuracy()),
            format!("{:.3}", run.coverage()),
            format!("{:.3}", run.late_fraction()),
            format!("{kb:.2}"),
        ]);
    }
    println!("{table}");
}
