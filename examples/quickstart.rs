//! Quickstart: simulate one workload with and without Gaze and print the
//! headline metrics (speedup, accuracy, coverage).
//!
//! ```text
//! cargo run --release --example quickstart [workload]
//! ```

use gaze_sim::runner::{records_for, run_single, RunParams};
use workloads::build_workload;

fn main() {
    let workload = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "bwaves_s".to_string());
    let params = RunParams::experiment();
    let trace = build_workload(&workload, records_for(&params));

    println!(
        "workload: {workload} ({} memory accesses per pass)",
        trace.len()
    );
    let run = run_single(&trace, "gaze", &params);
    println!("baseline IPC        : {:.3}", run.baseline.ipc());
    println!("IPC with Gaze       : {:.3}", run.stats.ipc());
    println!("speedup             : {:.3}x", run.speedup());
    println!("overall accuracy    : {:.1}%", run.accuracy() * 100.0);
    println!("LLC miss coverage   : {:.1}%", run.coverage() * 100.0);
    println!(
        "late prefetches     : {:.1}% of useful",
        run.late_fraction() * 100.0
    );
    println!(
        "Gaze metadata budget: {:.2} KB",
        gaze::GazeConfig::paper_default()
            .storage_breakdown_bits()
            .total_kib()
    );
}
