//! Smoke tests for the experiment harness: every figure/table driver runs at
//! a tiny scale and produces non-empty tables with the expected shape.

use gaze_repro::gaze_sim::experiments::{experiment_names, run_experiment, ExperimentScale};
use gaze_repro::gaze_sim::runner::RunParams;

fn tiny_scale() -> ExperimentScale {
    ExperimentScale {
        params: RunParams {
            warmup: 1_000,
            measured: 6_000,
            ..RunParams::test()
        },
        workloads_per_suite: 1,
    }
}

#[test]
fn storage_tables_have_expected_rows() {
    let scale = tiny_scale();
    let t1 = run_experiment("table1", &scale);
    assert_eq!(t1.len(), 1);
    assert_eq!(t1[0].len(), 7); // FT, AT, PHT, DPCT, PB, DC, total
    let t4 = run_experiment("table4", &scale);
    assert_eq!(t4[0].len(), 8);
}

#[test]
fn single_core_figures_run_at_tiny_scale() {
    let scale = tiny_scale();
    for name in ["fig01", "fig04", "fig09", "fig10", "fig12"] {
        let tables = run_experiment(name, &scale);
        assert!(!tables.is_empty(), "{name} produced no tables");
        for table in &tables {
            assert!(!table.is_empty(), "{name} produced an empty table");
        }
    }
}

#[test]
fn main_comparison_produces_speedup_accuracy_and_coverage() {
    let scale = tiny_scale();
    let tables = run_experiment("fig06", &scale);
    assert_eq!(
        tables.len(),
        4,
        "fig06/07/08 return speedup, accuracy, coverage and timeliness"
    );
    // Nine prefetchers per table.
    assert_eq!(tables[0].len(), 9);
    assert_eq!(tables[1].len(), 9);
    assert_eq!(tables[2].len(), 9);
}

#[test]
fn sensitivity_figures_run_at_tiny_scale() {
    let scale = tiny_scale();
    for name in ["fig17", "fig18"] {
        let tables = run_experiment(name, &scale);
        for table in &tables {
            assert!(!table.is_empty(), "{name} produced an empty table");
        }
    }
}

#[test]
fn every_registered_experiment_name_is_runnable_shape() {
    // Only checks the registry is consistent (the heavier multi-core figures
    // are exercised by the bench targets and the multicore integration test).
    assert!(experiment_names().len() >= 17);
}
