//! Golden-figure regression harness.
//!
//! `tests/fixtures/` holds a small committed GZR store (v1 single-core
//! segments from fig06/fig13 and a v2 multi-core segment from fig15, all
//! at the `test` scale) plus the exact CSVs those figures printed when
//! the store was generated. This test regenerates each figure from the
//! fixture store and asserts:
//!
//! 1. **zero simulation** — every row is served from the store, proving
//!    the fingerprint definitions (trace, params, mix) and both record
//!    codecs still reproduce the keys and counters written by the
//!    generating build;
//! 2. **byte-identical CSV** — the whole figure pipeline (store decode →
//!    metric projection → table formatting) matches the committed bytes.
//!
//! Any change to the on-disk format, the fingerprints, the metric
//! arithmetic or the figure assembly that would alter served results
//! fails here — without a single simulation, so the test is cheap enough
//! for tier-1. If a change is *intentional* (e.g. a format version bump
//! with a re-keyed store), regenerate the fixtures:
//!
//! ```text
//! rm -rf tests/fixtures/gzr-store tests/fixtures/fig{06,13,15}.csv
//! export GAZE_SCALE=test GAZE_RESULTS_DIR=$PWD/tests/fixtures/gzr-store
//! cargo run --release -p gaze-sim --bin gaze-experiments -- fig06 --csv > tests/fixtures/fig06.csv
//! cargo run --release -p gaze-sim --bin gaze-experiments -- fig13 --csv > tests/fixtures/fig13.csv
//! cargo run --release -p gaze-sim --bin gaze-experiments -- fig15 --csv > tests/fixtures/fig15.csv
//! ```
//!
//! The store is copied into a temporary directory before use so a
//! regression that *misses* (and would simulate + write through) can
//! never dirty the committed fixtures.

use std::path::{Path, PathBuf};

use gaze_repro::gaze_sim::experiments::{run_experiment, ExperimentScale};
use gaze_repro::gaze_sim::results;
use gaze_repro::gaze_sim::runner::simulated_instructions;
use gaze_repro::gaze_sim::spec;

const GOLDEN: [(&str, &str); 3] = [
    ("fig06", include_str!("fixtures/fig06.csv")),
    ("fig13", include_str!("fixtures/fig13.csv")),
    ("fig15", include_str!("fixtures/fig15.csv")),
];

fn copy_fixture_store(into: &Path) {
    let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/gzr-store");
    std::fs::create_dir_all(into).expect("create temp store dir");
    let mut copied = 0;
    for entry in std::fs::read_dir(&src).expect("fixture store dir") {
        let path = entry.expect("fixture entry").path();
        if path.extension().and_then(|e| e.to_str()) == Some("gzr") {
            std::fs::copy(&path, into.join(path.file_name().expect("file name")))
                .expect("copy fixture segment");
            copied += 1;
        }
    }
    assert!(copied >= 3, "expected the committed v1 + v2 segments");
}

/// Deactivates the process-global store on drop even if an assertion
/// fails mid-test, so no other test in this binary inherits it.
struct StoreGuard;

impl Drop for StoreGuard {
    fn drop(&mut self) {
        results::configure(None).expect("deactivate store");
    }
}

#[test]
fn golden_figures_regenerate_byte_identically_from_the_committed_store() {
    let dir: PathBuf = std::env::temp_dir().join(format!("gzr-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    copy_fixture_store(&dir);

    results::configure(Some(&dir)).expect("activate fixture store");
    let _guard = StoreGuard;
    let scale = ExperimentScale::named("test").expect("test scale");

    for (figure, expected) in GOLDEN {
        let before = simulated_instructions();
        let csv: String = run_experiment(figure, &scale)
            .iter()
            .map(|t| t.to_csv())
            .collect();
        assert_eq!(
            simulated_instructions(),
            before,
            "{figure}: the committed store must serve every row without \
             simulating — a key or codec regression made the harness miss"
        );
        assert_eq!(
            csv, expected,
            "{figure}: CSV regenerated from the committed store must be \
             byte-identical to tests/fixtures/{figure}.csv"
        );

        // The same figure through the *serialized* spec path: the
        // built-in spec rendered to the text format, re-parsed, and run
        // through plan/execute/render must reproduce the same bytes —
        // again with zero simulation. This pins spec↔legacy equivalence
        // end to end (text format included), not just the in-memory
        // registry.
        let builtin = spec::builtin::builtin_spec(figure).expect("built-in spec");
        let reparsed = spec::text::parse(&spec::text::to_text(&builtin))
            .unwrap_or_else(|e| panic!("{figure}: built-in spec failed to re-parse: {e}"));
        let before = simulated_instructions();
        let spec_csv: String = spec::run_spec(&reparsed, &scale)
            .iter()
            .map(|t| t.to_csv())
            .collect();
        assert_eq!(
            simulated_instructions(),
            before,
            "{figure}: the spec path must also be simulation-free from \
             the committed store"
        );
        assert_eq!(
            spec_csv, expected,
            "{figure}: the serialized-spec path must regenerate the \
             golden CSV byte-identically"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}
