//! Property-style integration tests: invariants that must hold for every
//! prefetcher on arbitrary access streams.
//!
//! The streams are produced by a deterministic LCG rather than proptest
//! (unavailable in the offline build environment); each property is checked
//! across many seeds, so the coverage is comparable and every failure is
//! exactly reproducible.

use gaze_repro::gaze_sim::make_prefetcher;
use gaze_repro::prefetch_common::access::DemandAccess;
use gaze_repro::prefetch_common::addr::RegionGeometry;
use gaze_repro::prefetch_common::prefetcher::PrefetcherExt;

/// Deterministic (pc, block) access stream.
fn access_stream(seed: u64) -> impl Iterator<Item = (u64, u64)> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    std::iter::from_fn(move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let pc = (state >> 17) % 512;
        let block = (state >> 26) % (1 << 22);
        Some((pc, block))
    })
}

/// Prefetchers never emit unboundedly many requests per access, and every
/// emitted request is well-formed (block addresses fit the address space
/// used by the generators).
#[test]
fn prefetchers_emit_bounded_wellformed_requests() {
    let names = ["gaze", "pmp", "bingo", "vberti", "ip-stride", "spp-ppf"];
    for name in names {
        for seed in 1..=4u64 {
            let mut p = make_prefetcher(name);
            let mut total = 0usize;
            let accesses: Vec<(u64, u64)> = access_stream(seed)
                .take(150 + (seed as usize * 37) % 150)
                .collect();
            for (pc, block) in &accesses {
                let access = DemandAccess::load(0x400000 + pc * 4, block * 64);
                let reqs = p.on_access_vec(&access, false);
                total += reqs.len();
                for r in &reqs {
                    assert!(
                        r.block.raw() < (1 << 40),
                        "{name} emitted a request outside the plausible address space"
                    );
                }
                total += p.tick_vec().len();
            }
            // No prefetcher may emit unboundedly many requests per access
            // (the paper's structures are all degree-limited).
            assert!(
                total <= accesses.len() * 64,
                "{name} emitted {total} requests for {} accesses",
                accesses.len()
            );
        }
    }
}

/// Gaze never prefetches inside a region it has only seen one access to
/// (the Filter Table guarantees one-bit footprints are filtered).
#[test]
fn gaze_requires_two_accesses_per_region() {
    let geom = RegionGeometry::gaze_default();
    for seed in 1..=8u64 {
        let mut gaze = make_prefetcher("gaze");
        let regions: Vec<u64> = access_stream(seed)
            .take(20 + (seed as usize * 23) % 180)
            .map(|(_, b)| b % 10_000)
            .collect();
        let mut seen = std::collections::BTreeSet::new();
        for (i, region) in regions.iter().enumerate() {
            // One access per region only, at a region-dependent offset.
            if !seen.insert(*region) {
                continue;
            }
            let offset = (region % 64) as usize;
            let addr = geom.addr_at(
                gaze_repro::prefetch_common::addr::RegionId::new(*region),
                offset,
            );
            let reqs = gaze.on_access_vec(&DemandAccess::load(0x400 + i as u64, addr.raw()), false);
            assert!(reqs.is_empty());
            assert!(
                gaze.tick_vec().is_empty(),
                "no prefetch may be staged after single-access regions"
            );
        }
    }
}
