//! Property-based integration tests: invariants that must hold for every
//! prefetcher on arbitrary access streams.

use proptest::prelude::*;

use gaze_repro::gaze_sim::make_prefetcher;
use gaze_repro::prefetch_common::access::DemandAccess;
use gaze_repro::prefetch_common::addr::RegionGeometry;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Prefetchers never request the very block that triggered them redundantly
    /// in enormous numbers, and every emitted request is well-formed (block
    /// addresses fit the address space used by the generators).
    #[test]
    fn prefetchers_emit_bounded_wellformed_requests(
        accesses in proptest::collection::vec((0u64..512, 0u64..(1 << 22)), 50..300),
        prefetcher_idx in 0usize..6,
    ) {
        let names = ["gaze", "pmp", "bingo", "vberti", "ip-stride", "spp-ppf"];
        let mut p = make_prefetcher(names[prefetcher_idx]);
        let mut total = 0usize;
        for (pc, block) in &accesses {
            let access = DemandAccess::load(0x400000 + pc * 4, block * 64);
            let reqs = p.on_access(&access, false);
            total += reqs.len();
            for r in &reqs {
                prop_assert!(r.block.raw() < (1 << 40), "request outside plausible address space");
            }
            total += p.tick().len();
        }
        // No prefetcher may emit unboundedly many requests per access
        // (the paper's structures are all degree-limited).
        prop_assert!(total <= accesses.len() * 64, "emitted {total} requests for {} accesses", accesses.len());
    }

    /// Gaze never prefetches inside a region it has only seen one access to
    /// (the Filter Table guarantees one-bit footprints are filtered).
    #[test]
    fn gaze_requires_two_accesses_per_region(regions in proptest::collection::vec(0u64..10_000, 20..200)) {
        let geom = RegionGeometry::gaze_default();
        let mut gaze = make_prefetcher("gaze");
        for (i, region) in regions.iter().enumerate() {
            // One access per region only, at a region-dependent offset.
            let offset = (region % 64) as usize;
            let addr = geom.addr_at(prefetch_common::addr::RegionId::new(*region), offset);
            let reqs = gaze.on_access(&DemandAccess::load(0x400 + i as u64, addr.raw()), false);
            prop_assert!(reqs.is_empty());
            prop_assert!(gaze.tick().is_empty(), "no prefetch may be staged after single-access regions");
        }
    }
}
