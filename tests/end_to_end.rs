//! Cross-crate integration tests: workloads -> simulator -> prefetchers ->
//! metrics, checking the qualitative claims the paper's evaluation rests on.

use gaze_sim::runner::{records_for, run_single, RunParams};
use gaze_sim::{make_prefetcher, MAIN_PREFETCHERS};
use workloads::build_workload;

fn quick_params() -> RunParams {
    RunParams {
        warmup: 10_000,
        measured: 50_000,
        ..RunParams::experiment()
    }
}

#[test]
fn every_main_prefetcher_runs_on_every_suite_representative() {
    let params = RunParams {
        warmup: 2_000,
        measured: 10_000,
        ..RunParams::test()
    };
    for workload in ["bwaves_s", "PageRank", "cassandra", "mcf_s", "facesim"] {
        let trace = build_workload(workload, records_for(&params));
        for prefetcher in MAIN_PREFETCHERS {
            let run = run_single(&trace, prefetcher, &params);
            assert!(
                run.speedup() > 0.2 && run.speedup() < 10.0,
                "{prefetcher} on {workload}: implausible speedup {:.3}",
                run.speedup()
            );
            assert!(run.accuracy() >= 0.0 && run.accuracy() <= 1.0);
            assert!(run.coverage() >= 0.0 && run.coverage() <= 1.0);
        }
    }
}

#[test]
fn gaze_accelerates_spatial_streaming() {
    let params = quick_params();
    let trace = build_workload("bwaves_s", records_for(&params));
    let run = run_single(&trace, "gaze", &params);
    assert!(
        run.speedup() > 1.2,
        "streaming speedup too low: {:.3}",
        run.speedup()
    );
    assert!(
        run.coverage() > 0.3,
        "streaming coverage too low: {:.3}",
        run.coverage()
    );
}

#[test]
fn gaze_beats_offset_only_characterization_on_conflicting_footprints() {
    // The Fig. 2 / Fig. 9 claim: when several footprints share a trigger
    // offset, the two-access characterization predicts more accurately than
    // trigger-offset-only matching.
    let params = quick_params();
    let trace = build_workload("fotonik3d_s", records_for(&params));
    let gaze = run_single(&trace, "gaze", &params);
    let offset = run_single(&trace, "offset", &params);
    assert!(
        gaze.accuracy() > offset.accuracy() + 0.05,
        "gaze accuracy {:.3} should clearly beat offset-only {:.3}",
        gaze.accuracy(),
        offset.accuracy()
    );
    assert!(
        gaze.speedup() >= offset.speedup() - 0.02,
        "gaze speedup {:.3} should not trail offset-only {:.3}",
        gaze.speedup(),
        offset.speedup()
    );
}

#[test]
fn gaze_beats_pmp_on_cloud_like_irregularity() {
    // The paper's headline contrast: coarse offset-merging degrades on
    // complex (CloudSuite-like) workloads while Gaze stays safe.
    let params = quick_params();
    let trace = build_workload("cassandra", records_for(&params));
    let gaze = run_single(&trace, "gaze", &params);
    let pmp = run_single(&trace, "pmp", &params);
    assert!(
        gaze.speedup() > pmp.speedup(),
        "gaze {:.3} should beat pmp {:.3} on cloud-like workloads",
        gaze.speedup(),
        pmp.speedup()
    );
    assert!(
        gaze.speedup() > 0.95,
        "gaze must not significantly degrade cloud workloads"
    );
}

#[test]
fn strict_matching_keeps_gaze_accuracy_above_pmp() {
    let params = quick_params();
    let mut gaze_acc = Vec::new();
    let mut pmp_acc = Vec::new();
    for workload in ["fotonik3d_s", "cassandra", "PageRank"] {
        let trace = build_workload(workload, records_for(&params));
        gaze_acc.push(run_single(&trace, "gaze", &params).accuracy());
        pmp_acc.push(run_single(&trace, "pmp", &params).accuracy());
    }
    let gaze_mean: f64 = gaze_acc.iter().sum::<f64>() / gaze_acc.len() as f64;
    let pmp_mean: f64 = pmp_acc.iter().sum::<f64>() / pmp_acc.len() as f64;
    assert!(
        gaze_mean > pmp_mean,
        "average gaze accuracy {gaze_mean:.3} should exceed pmp {pmp_mean:.3}"
    );
}

#[test]
fn storage_budgets_match_table_iv_ordering() {
    let kb = |name: &str| make_prefetcher(name).storage_bits() as f64 / 8.0 / 1024.0;
    // Gaze ~4.5 KB, about 31x below Bingo, and below PMP.
    assert!((kb("gaze") - 4.46).abs() < 0.2);
    assert!(kb("bingo") / kb("gaze") > 25.0);
    assert!(kb("pmp") > kb("gaze"));
    assert!(kb("sms") > 100.0);
}

#[test]
fn multicore_contention_preserves_gaze_advantage_over_pmp() {
    use gaze_sim::runner::multicore_speedup;
    let params = RunParams {
        warmup: 5_000,
        measured: 25_000,
        ..RunParams::experiment()
    };
    let records = records_for(&params);
    let traces: Vec<_> = ["bwaves_s", "PageRank", "cassandra", "fotonik3d_s"]
        .iter()
        .map(|n| build_workload(n, records))
        .collect();
    let refs: Vec<&dyn sim_core::trace::TraceSource> = traces.iter().map(|t| t as _).collect();
    let (_, _, gaze) = multicore_speedup(&refs, "gaze", &params);
    let (_, _, pmp) = multicore_speedup(&refs, "pmp", &params);
    assert!(
        gaze > pmp,
        "4-core: gaze {gaze:.3} should beat pmp {pmp:.3}"
    );
}
