//! Tier-1 invariant gate: the committed workspace must be `gaze-lint`
//! clean. This is the same analysis as `cargo run -p gaze-lint -- .`,
//! run in-process so plain `cargo test` enforces the determinism,
//! crash-safety and observability contracts on every PR.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = gaze_repro::gaze_lint::lint_workspace(root).expect("walk workspace sources");
    assert!(
        findings.is_empty(),
        "gaze-lint found {} violation(s) — fix them or annotate each site with\n\
         `// gaze-lint: allow(<rule>) -- <reason>`:\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
